"""Declarative scenario specifications.

A *scenario* is a versionable, reproducible description of a complete
analog-BIST test program: which device, which analyzer setup, which
execution backend, and an ordered list of typed *steps* — Bode sweeps,
Monte-Carlo yield lots, fault-coverage campaigns, distortion probes,
dictionary diagnoses, dynamic-range sweeps.  The paper's analyzer exists
to run exactly such programs; this schema lets them be written down as
data instead of ad-hoc Python, round-tripped through JSON
(:func:`repro.reporting.export.scenario_to_json`), and replayed
bit-identically by the compiler (:mod:`repro.scenarios.compiler`).

Validation is strict and *names the offending field*: a spec that
parses is a spec that runs.  All frequencies must lie inside the
analyzer's valid band (``[PAPER_MIN_FREQUENCY, PAPER_MAX_FREQUENCY]``);
evaluation windows must be even (the chopped evaluator's requirement);
worker counts must be >= 1; step kinds must be one of
:data:`STEP_KINDS`.
"""

from __future__ import annotations

import dataclasses
import hashlib
from dataclasses import dataclass, field
from typing import ClassVar

from ..core.sweep import PAPER_MAX_FREQUENCY, PAPER_MIN_FREQUENCY
from ..engine.runner import BACKENDS
from ..errors import ConfigError
from ..prbist.lfsr import LFSR_FORMS, PRIMITIVE_POLYNOMIALS

#: Schema identifier of a serialized scenario.
SCENARIO_FORMAT = "repro-scenario"
SCENARIO_VERSION = 1


def _require_in_band(step: str, fieldname: str, value: float) -> float:
    value = float(value)
    if not PAPER_MIN_FREQUENCY <= value <= PAPER_MAX_FREQUENCY:
        raise ConfigError(
            f"step {step!r}: {fieldname} = {value:g} Hz is outside the "
            f"analyzer band [{PAPER_MIN_FREQUENCY:g}, "
            f"{PAPER_MAX_FREQUENCY:g}] Hz"
        )
    return value


def _require_even_window(owner: str, fieldname: str, value) -> None:
    if value is None:
        return
    if not isinstance(value, int) or isinstance(value, bool) or value < 2:
        raise ConfigError(
            f"{owner}: {fieldname} must be an integer >= 2, got {value!r}"
        )
    if value % 2 != 0:
        raise ConfigError(
            f"{owner}: {fieldname} must be even (chopped counting), got {value}"
        )


def _require_name(kind: str, name) -> None:
    if not isinstance(name, str) or not name:
        raise ConfigError(f"{kind} step: name must be a non-empty string, got {name!r}")


# ----------------------------------------------------------------------
# Device and analyzer settings
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class DUTSpec:
    """The demonstrator device the scenario is written against."""

    cutoff: float = 1000.0
    q: float = 0.7071

    def __post_init__(self) -> None:
        if not self.cutoff > 0:
            raise ConfigError(f"dut: cutoff must be positive, got {self.cutoff!r}")
        if not self.q > 0:
            raise ConfigError(f"dut: q must be positive, got {self.q!r}")


@dataclass(frozen=True)
class AnalyzerSettings:
    """Scenario-wide analyzer configuration.

    ``evaluator_noise_rms`` > 0 enables evaluator amplifier noise and
    ``generator_noise_rms`` > 0 enables stimulus-generator amplifier
    noise; both streams are seeded from the scenario's ``seed``, so a
    noisy scenario stays exactly as reproducible as a clean one.  Every
    combination is eligible for the vectorized backend — a noisy
    generator renders as a batched per-device stimulus there (see
    :mod:`repro.engine.vectorized`).
    """

    m_periods: int = 40
    stimulus_amplitude: float = 0.3
    evaluator_noise_rms: float = 0.0
    generator_noise_rms: float = 0.0

    def __post_init__(self) -> None:
        _require_even_window("analyzer", "m_periods", self.m_periods)
        if not 0 < self.stimulus_amplitude <= 0.5:
            raise ConfigError(
                f"analyzer: stimulus_amplitude must be in (0, 0.5] V, "
                f"got {self.stimulus_amplitude!r}"
            )
        if self.evaluator_noise_rms < 0:
            raise ConfigError(
                f"analyzer: evaluator_noise_rms must be >= 0, "
                f"got {self.evaluator_noise_rms!r}"
            )
        if self.generator_noise_rms < 0:
            raise ConfigError(
                f"analyzer: generator_noise_rms must be >= 0, "
                f"got {self.generator_noise_rms!r}"
            )


# ----------------------------------------------------------------------
# Step types
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class SweepStep:
    """A Bode characterization sweep (paper Fig. 10a/b)."""

    kind: ClassVar[str] = "sweep"

    name: str
    f_start: float = 100.0
    f_stop: float = 20_000.0
    n_points: int = 8
    m_periods: int | None = None

    def __post_init__(self) -> None:
        _require_name(self.kind, self.name)
        _require_in_band(self.name, "f_start", self.f_start)
        _require_in_band(self.name, "f_stop", self.f_stop)
        if not self.f_start < self.f_stop:
            raise ConfigError(
                f"step {self.name!r}: f_start {self.f_start:g} must be below "
                f"f_stop {self.f_stop:g}"
            )
        if self.n_points < 2:
            raise ConfigError(
                f"step {self.name!r}: n_points must be >= 2, got {self.n_points}"
            )
        _require_even_window(f"step {self.name!r}", "m_periods", self.m_periods)


@dataclass(frozen=True)
class YieldStep:
    """A Monte-Carlo yield lot through a go/no-go gain-mask program.

    The lot's component draws are a function of the *scenario* seed
    alone, so recording and replaying a scenario always simulates the
    same devices.  ``frequency_ratios`` places the test points relative
    to the DUT's cutoff.
    """

    kind: ClassVar[str] = "yield"

    name: str
    n_devices: int = 10
    component_sigma: float = 0.03
    tolerance_db: float = 2.0
    frequency_ratios: tuple[float, ...] = (0.3, 1.0, 2.0)
    ambiguous_passes: bool = False
    m_periods: int | None = None

    def __post_init__(self) -> None:
        _require_name(self.kind, self.name)
        if self.n_devices < 1:
            raise ConfigError(
                f"step {self.name!r}: n_devices must be >= 1, got {self.n_devices}"
            )
        if self.component_sigma < 0:
            raise ConfigError(
                f"step {self.name!r}: component_sigma must be >= 0, "
                f"got {self.component_sigma!r}"
            )
        if not self.tolerance_db > 0:
            raise ConfigError(
                f"step {self.name!r}: tolerance_db must be positive, "
                f"got {self.tolerance_db!r}"
            )
        object.__setattr__(
            self, "frequency_ratios", tuple(float(r) for r in self.frequency_ratios)
        )
        if not self.frequency_ratios:
            raise ConfigError(
                f"step {self.name!r}: frequency_ratios must not be empty"
            )
        if any(r <= 0 for r in self.frequency_ratios):
            raise ConfigError(
                f"step {self.name!r}: frequency_ratios must be positive, "
                f"got {self.frequency_ratios}"
            )
        _require_even_window(f"step {self.name!r}", "m_periods", self.m_periods)


@dataclass(frozen=True)
class CoverageStep:
    """Fault coverage of a go/no-go program over a fault catalog."""

    kind: ClassVar[str] = "coverage"

    name: str
    deviations: tuple[float, ...] = (0.2, 0.5)
    catastrophic: bool = False
    tolerance_db: float = 2.0
    frequency_ratios: tuple[float, ...] = (0.3, 1.0, 2.0)
    m_periods: int | None = None

    def __post_init__(self) -> None:
        _require_name(self.kind, self.name)
        object.__setattr__(
            self, "deviations", tuple(float(d) for d in self.deviations)
        )
        if not self.deviations:
            raise ConfigError(f"step {self.name!r}: deviations must not be empty")
        if any(d <= 0 for d in self.deviations):
            raise ConfigError(
                f"step {self.name!r}: deviations are magnitudes (each applied "
                f"+/-) and must be positive, got {self.deviations}"
            )
        if not self.tolerance_db > 0:
            raise ConfigError(
                f"step {self.name!r}: tolerance_db must be positive, "
                f"got {self.tolerance_db!r}"
            )
        object.__setattr__(
            self, "frequency_ratios", tuple(float(r) for r in self.frequency_ratios)
        )
        if not self.frequency_ratios or any(r <= 0 for r in self.frequency_ratios):
            raise ConfigError(
                f"step {self.name!r}: frequency_ratios must be a non-empty "
                f"tuple of positive ratios, got {self.frequency_ratios}"
            )
        _require_even_window(f"step {self.name!r}", "m_periods", self.m_periods)


@dataclass(frozen=True)
class DistortionStep:
    """An HD2/HD3 harmonic-distortion probe (paper Fig. 10c)."""

    kind: ClassVar[str] = "distortion"

    name: str
    fwaves: tuple[float, ...] = (1600.0,)
    amplitude: float = 0.4
    hd2_dbc: float = -57.0
    hd3_dbc: float = -64.5
    harmonics: tuple[int, ...] = (2, 3)
    m_periods: int | None = None

    def __post_init__(self) -> None:
        _require_name(self.kind, self.name)
        object.__setattr__(self, "fwaves", tuple(float(f) for f in self.fwaves))
        if not self.fwaves:
            raise ConfigError(f"step {self.name!r}: fwaves must not be empty")
        for f in self.fwaves:
            _require_in_band(self.name, "fwaves", f)
        if not 0 < self.amplitude <= 0.5:
            raise ConfigError(
                f"step {self.name!r}: amplitude must be in (0, 0.5] V, "
                f"got {self.amplitude!r}"
            )
        for label, level in (("hd2_dbc", self.hd2_dbc), ("hd3_dbc", self.hd3_dbc)):
            if not level < 0:
                raise ConfigError(
                    f"step {self.name!r}: {label} must be negative (dBc), "
                    f"got {level!r}"
                )
        object.__setattr__(self, "harmonics", tuple(int(k) for k in self.harmonics))
        if not self.harmonics or any(k < 2 for k in self.harmonics):
            raise ConfigError(
                f"step {self.name!r}: harmonics must all be >= 2, "
                f"got {self.harmonics}"
            )
        _require_even_window(f"step {self.name!r}", "m_periods", self.m_periods)


@dataclass(frozen=True)
class DiagnoseStep:
    """Dictionary-based diagnosis of an injected fault.

    Builds a fault dictionary over a candidate sweep around the cutoff,
    compacts it to the ``n_probes`` most discriminating frequencies,
    measures the device with the injected fault, and records the ranked
    candidates plus the honest ambiguity group.  ``inject`` is a catalog
    label (e.g. ``r2+50%``) or ``nominal`` for the fault-free device.
    """

    kind: ClassVar[str] = "diagnose"

    name: str
    inject: str = "r2+50%"
    deviations: tuple[float, ...] = (0.2, 0.5)
    catastrophic: bool = False
    n_candidate_points: int = 8
    decades: float = 1.5
    n_probes: int = 3
    top_n: int = 5
    m_periods: int | None = None

    def __post_init__(self) -> None:
        _require_name(self.kind, self.name)
        if not isinstance(self.inject, str) or not self.inject:
            raise ConfigError(
                f"step {self.name!r}: inject must be a fault label or "
                f"'nominal', got {self.inject!r}"
            )
        object.__setattr__(
            self, "deviations", tuple(float(d) for d in self.deviations)
        )
        if not self.deviations or any(d <= 0 for d in self.deviations):
            raise ConfigError(
                f"step {self.name!r}: deviations must be a non-empty tuple of "
                f"positive magnitudes, got {self.deviations}"
            )
        if self.n_candidate_points < 2:
            raise ConfigError(
                f"step {self.name!r}: n_candidate_points must be >= 2, "
                f"got {self.n_candidate_points}"
            )
        if not self.decades > 0:
            raise ConfigError(
                f"step {self.name!r}: decades must be positive, got {self.decades!r}"
            )
        if self.n_probes < 1:
            raise ConfigError(
                f"step {self.name!r}: n_probes must be >= 1, got {self.n_probes}"
            )
        if self.top_n < 1:
            raise ConfigError(
                f"step {self.name!r}: top_n must be >= 1, got {self.top_n}"
            )
        _require_even_window(f"step {self.name!r}", "m_periods", self.m_periods)


@dataclass(frozen=True)
class DynamicRangeStep:
    """Weak-tone dynamic-range sweep of the evaluator (paper Fig. 9)."""

    kind: ClassVar[str] = "dynamic_range"

    name: str
    levels_dbc: tuple[float, ...] = (-30.0, -40.0, -50.0, -60.0)
    threshold_db: float = 3.0
    harmonic: int = 3
    m_periods: int | None = None

    def __post_init__(self) -> None:
        _require_name(self.kind, self.name)
        object.__setattr__(
            self, "levels_dbc", tuple(float(x) for x in self.levels_dbc)
        )
        if not self.levels_dbc or any(x >= 0 for x in self.levels_dbc):
            raise ConfigError(
                f"step {self.name!r}: levels_dbc must be a non-empty tuple of "
                f"negative dBc levels, got {self.levels_dbc}"
            )
        if not self.threshold_db > 0:
            raise ConfigError(
                f"step {self.name!r}: threshold_db must be positive, "
                f"got {self.threshold_db!r}"
            )
        if self.harmonic < 2:
            raise ConfigError(
                f"step {self.name!r}: harmonic must be >= 2, got {self.harmonic}"
            )
        _require_even_window(f"step {self.name!r}", "m_periods", self.m_periods)


def _require_prbist_stimulus(step: "PseudorandomStep | SignatureCheckStep") -> None:
    """Shared validation of the pseudorandom stimulus fields."""
    if step.lfsr_width not in PRIMITIVE_POLYNOMIALS:
        raise ConfigError(
            f"step {step.name!r}: lfsr_width must be one of "
            f"{sorted(PRIMITIVE_POLYNOMIALS)} (tabulated primitive "
            f"polynomials), got {step.lfsr_width!r}"
        )
    if step.lfsr_form not in LFSR_FORMS:
        raise ConfigError(
            f"step {step.name!r}: lfsr_form must be one of {LFSR_FORMS}, "
            f"got {step.lfsr_form!r}"
        )
    if (
        not isinstance(step.n_patterns, int)
        or isinstance(step.n_patterns, bool)
        or step.n_patterns < 1
    ):
        raise ConfigError(
            f"step {step.name!r}: n_patterns must be an integer >= 1, "
            f"got {step.n_patterns!r}"
        )
    if step.misr_width not in PRIMITIVE_POLYNOMIALS:
        raise ConfigError(
            f"step {step.name!r}: misr_width must be one of "
            f"{sorted(PRIMITIVE_POLYNOMIALS)} (tabulated primitive "
            f"polynomials), got {step.misr_width!r}"
        )
    object.__setattr__(step, "f_lo", float(step.f_lo))
    object.__setattr__(step, "f_hi", float(step.f_hi))
    _require_in_band(step.name, "f_lo", step.f_lo)
    _require_in_band(step.name, "f_hi", step.f_hi)
    if not step.f_lo < step.f_hi:
        raise ConfigError(
            f"step {step.name!r}: f_lo {step.f_lo:g} must be below "
            f"f_hi {step.f_hi:g}"
        )
    object.__setattr__(
        step, "deviations", tuple(float(d) for d in step.deviations)
    )
    if not step.deviations or any(d <= 0 for d in step.deviations):
        raise ConfigError(
            f"step {step.name!r}: deviations must be a non-empty tuple of "
            f"positive magnitudes, got {step.deviations}"
        )
    _require_even_window(f"step {step.name!r}", "m_periods", step.m_periods)


@dataclass(frozen=True)
class PseudorandomStep:
    """A pseudorandom-stimulus fault-coverage campaign (LFSR + MISR).

    An LFSR of ``lfsr_width`` bits (seeded deterministically from the
    *scenario* seed) draws ``n_patterns`` words, each mapped to a
    log-spaced tone inside ``[f_lo, f_hi]``; every catalog fault's
    quantized response is compacted into a ``misr_width``-bit signature
    and compared against the fault-free device's (see
    :mod:`repro.prbist`).
    """

    kind: ClassVar[str] = "pseudorandom"

    name: str
    lfsr_width: int = 10
    lfsr_form: str = "fibonacci"
    n_patterns: int = 6
    misr_width: int = 16
    f_lo: float = PAPER_MIN_FREQUENCY
    f_hi: float = PAPER_MAX_FREQUENCY
    deviations: tuple[float, ...] = (0.2, 0.5)
    catastrophic: bool = False
    m_periods: int | None = None

    def __post_init__(self) -> None:
        _require_name(self.kind, self.name)
        _require_prbist_stimulus(self)


@dataclass(frozen=True)
class SignatureCheckStep:
    """A single-device go/no-go signature comparison.

    Applies the ``inject`` catalog fault (or ``nominal`` for the
    fault-free device), measures its pseudorandom response, and checks
    the MISR signature against the golden device's — the leanest
    possible production test: one stored signature, one comparison.
    The catalog fields exist only to resolve ``inject``.
    """

    kind: ClassVar[str] = "signature_check"

    name: str
    inject: str = "nominal"
    lfsr_width: int = 10
    lfsr_form: str = "fibonacci"
    n_patterns: int = 6
    misr_width: int = 16
    f_lo: float = PAPER_MIN_FREQUENCY
    f_hi: float = PAPER_MAX_FREQUENCY
    deviations: tuple[float, ...] = (0.2, 0.5)
    catastrophic: bool = False
    m_periods: int | None = None

    def __post_init__(self) -> None:
        _require_name(self.kind, self.name)
        if not isinstance(self.inject, str) or not self.inject:
            raise ConfigError(
                f"step {self.name!r}: inject must be a fault label or "
                f"'nominal', got {self.inject!r}"
            )
        _require_prbist_stimulus(self)


#: Registry of step kinds: the only kinds a scenario may contain.
STEP_KINDS = {
    cls.kind: cls
    for cls in (
        SweepStep,
        YieldStep,
        CoverageStep,
        DistortionStep,
        DiagnoseStep,
        DynamicRangeStep,
        PseudorandomStep,
        SignatureCheckStep,
    )
}

Step = (
    SweepStep
    | YieldStep
    | CoverageStep
    | DistortionStep
    | DiagnoseStep
    | DynamicRangeStep
    | PseudorandomStep
    | SignatureCheckStep
)


# ----------------------------------------------------------------------
# The scenario itself
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class ScenarioSpec:
    """A complete, versionable test-program description.

    ``backend``, ``n_workers`` and ``chunk_size`` are the spec's
    *defaults*; the compiler, CLI and golden-baseline harness can
    override them at run time — results are guaranteed equivalent
    (exactly the engine's backend/parallelism/chunking contract), which
    is what makes one recorded baseline valid for every execution
    strategy.
    """

    name: str
    steps: tuple[Step, ...]
    description: str = ""
    seed: int = 0
    dut: DUTSpec = field(default_factory=DUTSpec)
    analyzer: AnalyzerSettings = field(default_factory=AnalyzerSettings)
    backend: str = "reference"
    n_workers: int = 1
    chunk_size: int | None = None

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name:
            raise ConfigError(
                f"scenario: name must be a non-empty string, got {self.name!r}"
            )
        object.__setattr__(self, "steps", tuple(self.steps))
        if not self.steps:
            raise ConfigError(f"scenario {self.name!r}: steps must not be empty")
        for step in self.steps:
            if type(step) not in STEP_KINDS.values():
                raise ConfigError(
                    f"scenario {self.name!r}: unknown step type {type(step).__name__!r}"
                )
        names = [s.name for s in self.steps]
        if len(set(names)) != len(names):
            duplicates = sorted({n for n in names if names.count(n) > 1})
            raise ConfigError(
                f"scenario {self.name!r}: duplicate step names {duplicates}"
            )
        if not isinstance(self.seed, int) or isinstance(self.seed, bool) or self.seed < 0:
            raise ConfigError(
                f"scenario {self.name!r}: seed must be an integer >= 0, "
                f"got {self.seed!r}"
            )
        if self.backend not in BACKENDS:
            raise ConfigError(
                f"scenario {self.name!r}: backend must be one of {BACKENDS}, "
                f"got {self.backend!r}"
            )
        if (
            not isinstance(self.n_workers, int)
            or isinstance(self.n_workers, bool)
            or self.n_workers < 1
        ):
            raise ConfigError(
                f"scenario {self.name!r}: n_workers must be an integer >= 1, "
                f"got {self.n_workers!r}"
            )
        if self.chunk_size is not None and (
            not isinstance(self.chunk_size, int)
            or isinstance(self.chunk_size, bool)
            or self.chunk_size < 1
        ):
            raise ConfigError(
                f"scenario {self.name!r}: chunk_size must be an integer >= 1 "
                f"or None, got {self.chunk_size!r}"
            )

    @property
    def step_names(self) -> tuple[str, ...]:
        return tuple(s.name for s in self.steps)

    # ------------------------------------------------------------------
    # Serialization (see repro.reporting.export)
    # ------------------------------------------------------------------
    def to_json(self) -> str:
        """Canonical JSON text round-trippable via :meth:`from_json`."""
        from ..reporting.export import scenario_to_json

        return scenario_to_json(self)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        """Rebuild a spec serialized by :meth:`to_json`."""
        from ..reporting.export import scenario_from_json

        return scenario_from_json(text)

    def spec_key(self) -> str:
        """Stable content hash of this spec (SHA-256 hex digest).

        Hashes the canonical JSON form, so the key depends only on the
        spec's *values* — field order in a source payload, a hand-edited
        file's whitespace, or tuple-vs-list representation never change
        it, while any value change does.  The service layer pairs it
        with :meth:`repro.api.ExecutionPolicy.policy_key` to dedupe
        identical in-flight jobs.
        """
        return hashlib.sha256(self.to_json().encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# Payload conversion (the JSON-facing dict form)
# ----------------------------------------------------------------------

def _dataclass_payload(obj) -> dict:
    """Shallow field dict with tuples rendered as lists (JSON-safe)."""
    payload = {}
    for f in dataclasses.fields(obj):
        value = getattr(obj, f.name)
        payload[f.name] = list(value) if isinstance(value, tuple) else value
    return payload


def _dataclass_from_payload(cls, payload: dict, owner: str):
    """Strictly construct a spec dataclass from a JSON dict.

    Unknown keys are an error (a typo in a hand-written spec must not be
    silently ignored), missing keys fall back to the dataclass default,
    and list values become tuples so round-tripped specs compare equal.
    """
    if not isinstance(payload, dict):
        raise ConfigError(f"{owner}: expected a JSON object, got {payload!r}")
    known = {f.name for f in dataclasses.fields(cls)}
    unknown = sorted(set(payload) - known)
    if unknown:
        raise ConfigError(
            f"{owner}: unknown field(s) {unknown}; valid fields: {sorted(known)}"
        )
    kwargs = {
        key: tuple(value) if isinstance(value, list) else value
        for key, value in payload.items()
    }
    try:
        return cls(**kwargs)
    except ConfigError:
        raise  # already names the offending field
    except TypeError as exc:
        # A missing required field or a wrong-typed value that breaks a
        # comparison inside validation: keep the strict-ConfigError
        # contract instead of leaking a raw traceback.
        raise ConfigError(f"{owner}: {exc}") from exc


def step_to_payload(step: Step) -> dict:
    """The JSON dict form of one step (its ``kind`` plus its fields)."""
    payload = {"kind": step.kind}
    payload.update(_dataclass_payload(step))
    return payload


def step_from_payload(payload: dict) -> Step:
    """Rebuild a step from its JSON dict form; strict on kind and fields."""
    if not isinstance(payload, dict):
        raise ConfigError(f"step: expected a JSON object, got {payload!r}")
    kind = payload.get("kind")
    if kind not in STEP_KINDS:
        raise ConfigError(
            f"step: unknown kind {kind!r}; valid kinds: {sorted(STEP_KINDS)}"
        )
    fields = {k: v for k, v in payload.items() if k != "kind"}
    return _dataclass_from_payload(STEP_KINDS[kind], fields, f"step kind {kind!r}")


def scenario_to_payload(spec: ScenarioSpec) -> dict:
    """The JSON dict form of a whole scenario."""
    return {
        "format": SCENARIO_FORMAT,
        "version": SCENARIO_VERSION,
        "name": spec.name,
        "description": spec.description,
        "seed": spec.seed,
        "backend": spec.backend,
        "n_workers": spec.n_workers,
        "chunk_size": spec.chunk_size,
        "dut": _dataclass_payload(spec.dut),
        "analyzer": _dataclass_payload(spec.analyzer),
        "steps": [step_to_payload(step) for step in spec.steps],
    }


def scenario_from_payload(payload: dict) -> ScenarioSpec:
    """Rebuild a scenario from its JSON dict form (strict validation)."""
    if not isinstance(payload, dict) or payload.get("format") != SCENARIO_FORMAT:
        raise ConfigError(
            f"not a scenario spec (expected format {SCENARIO_FORMAT!r})"
        )
    if payload.get("version") != SCENARIO_VERSION:
        raise ConfigError(
            f"unsupported scenario version {payload.get('version')!r}; "
            f"this build reads version {SCENARIO_VERSION}"
        )
    steps_payload = payload.get("steps")
    if not isinstance(steps_payload, list):
        raise ConfigError("scenario: steps must be a JSON array")
    known = {
        "format", "version", "name", "description", "seed", "backend",
        "n_workers", "chunk_size", "dut", "analyzer", "steps",
    }
    unknown = sorted(set(payload) - known)
    if unknown:
        raise ConfigError(
            f"scenario: unknown field(s) {unknown}; valid fields: {sorted(known)}"
        )
    return ScenarioSpec(
        name=payload.get("name", ""),
        description=payload.get("description", ""),
        seed=payload.get("seed", 0),
        backend=payload.get("backend", "reference"),
        n_workers=payload.get("n_workers", 1),
        chunk_size=payload.get("chunk_size"),
        dut=_dataclass_from_payload(DUTSpec, payload.get("dut", {}), "dut"),
        analyzer=_dataclass_from_payload(
            AnalyzerSettings, payload.get("analyzer", {}), "analyzer"
        ),
        steps=tuple(step_from_payload(p) for p in steps_payload),
    )
