"""Golden-baseline record/check harness.

The regression-testing workflow the scenario layer exists for:

* :func:`record` runs a scenario and writes a canonical, self-contained
  artifact — the spec that produced it, the backend it ran on, every
  step's integer signatures (exact) and derived floats (with explicit
  tolerances).  Artifacts are byte-stable
  (:func:`repro.reporting.export.canonical_json`), so committing one
  pins the whole analyzer → evaluator → faults pipeline at a point in
  time.
* :func:`check` replays the embedded spec — on any backend, at any
  worker count — and diffs the replay against the recording
  (:func:`repro.scenarios.result.diff`).  Integer signatures must match
  bit-identically; floats must agree within the *recorded* tolerance.
  The returned report names every step and field that drifted.

``check(..., update=True)`` re-records in place after a confirmed
intentional change — the one-liner behind the CLI's
``scenarios check --update``.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass, replace

from ..engine.cache import CalibrationCache
from ..engine.runner import BatchRunner
from ..errors import ConfigError
from .compiler import run_scenario
from .result import DriftReport, ScenarioResult, diff
from .spec import ScenarioSpec


def default_baseline_path(spec: ScenarioSpec, directory) -> pathlib.Path:
    """Where a scenario's baseline lives by convention: ``<name>.json``."""
    return pathlib.Path(directory) / f"{spec.name}.json"


def record(
    spec: ScenarioSpec,
    path,
    backend: str | None = None,
    n_workers: int | None = None,
    runner: BatchRunner | None = None,
    cache: CalibrationCache | None = None,
    obs=None,
    chunk_size: int | None = None,
) -> ScenarioResult:
    """Run a scenario and write its golden baseline artifact.

    Tracing a recording (``obs=``, see :mod:`repro.obs`) never changes
    the artifact: span payloads live beside the run, not in it, so a
    baseline recorded with tracing enabled is byte-identical to one
    recorded without.
    """
    from ..reporting.export import baseline_to_json, write_json

    result = run_scenario(
        spec,
        backend=backend,
        n_workers=n_workers,
        runner=runner,
        cache=cache,
        obs=obs,
        chunk_size=chunk_size,
    )
    write_json(path, baseline_to_json(spec, result))
    return result


@dataclass(frozen=True)
class Baseline:
    """A loaded golden-baseline artifact: the spec plus its recording."""

    path: pathlib.Path
    spec: ScenarioSpec
    result: ScenarioResult


def load(path) -> Baseline:
    """Load a baseline artifact written by :func:`record`."""
    from ..reporting.export import baseline_from_json

    path = pathlib.Path(path)
    if not path.exists():
        raise ConfigError(f"no baseline at {path}")
    spec, result = baseline_from_json(path.read_text())
    return Baseline(path=path, spec=spec, result=result)


@dataclass(frozen=True)
class CheckReport:
    """Outcome of one baseline replay."""

    baseline: Baseline
    replayed: ScenarioResult
    drift: DriftReport
    updated: bool = False

    @property
    def ok(self) -> bool:
        return self.drift.ok

    def report(self) -> str:
        text = self.drift.report()
        if self.updated:
            text += f"\nbaseline re-recorded at {self.baseline.path}"
        return text


def check(
    path,
    backend: str | None = None,
    n_workers: int | None = None,
    runner: BatchRunner | None = None,
    cache: CalibrationCache | None = None,
    update: bool = False,
    obs=None,
    chunk_size: int | None = None,
) -> CheckReport:
    """Replay a recorded baseline and report any drift.

    The artifact is self-contained: the embedded spec is compiled and
    re-run (``backend``/``n_workers``/``chunk_size`` override the
    spec's defaults — the whole point is that the recording is valid
    for every execution strategy), and the replay is diffed against the
    recording.  With ``update=True`` a drifting baseline is re-recorded
    in place from the replay; the returned report still lists what
    changed.
    """
    from ..reporting.export import baseline_to_json, write_json

    baseline = load(path)
    replayed = run_scenario(
        baseline.spec,
        backend=backend,
        n_workers=n_workers,
        runner=runner,
        cache=cache,
        obs=obs,
        chunk_size=chunk_size,
    )
    drift = diff(baseline.result, replayed)
    updated = False
    if update and not drift.ok:
        # Keep the artifact's tolerance contract: the recording owns the
        # rel/abs tolerances (they may have been deliberately loosened),
        # only the measured channels are refreshed.
        refreshed = replace(
            replayed,
            rel_tol=baseline.result.rel_tol,
            abs_tol=baseline.result.abs_tol,
        )
        write_json(baseline.path, baseline_to_json(baseline.spec, refreshed))
        updated = True
    return CheckReport(
        baseline=baseline, replayed=replayed, drift=drift, updated=updated
    )
