"""Declarative scenarios: whole test programs as versionable data.

The paper's network analyzer exists to run *test programs* — sequenced
Bode sweeps, Monte-Carlo yield lots, fault campaigns, distortion probes,
go/no-go limit checks.  This subsystem gives every such program one
declarative, reproducible description:

* :class:`~repro.scenarios.spec.ScenarioSpec` — a strict schema of
  typed steps (:class:`~repro.scenarios.spec.SweepStep`,
  :class:`~repro.scenarios.spec.YieldStep`,
  :class:`~repro.scenarios.spec.CoverageStep`,
  :class:`~repro.scenarios.spec.DistortionStep`,
  :class:`~repro.scenarios.spec.DiagnoseStep`,
  :class:`~repro.scenarios.spec.DynamicRangeStep`,
  :class:`~repro.scenarios.spec.PseudorandomStep`,
  :class:`~repro.scenarios.spec.SignatureCheckStep`) plus analyzer, DUT,
  seed, backend and worker settings, JSON round-tripped via
  :func:`repro.reporting.export.scenario_to_json`;
* :func:`~repro.scenarios.compiler.compile_scenario` /
  :func:`~repro.scenarios.compiler.run_scenario` — the compiler that
  lowers specs onto the existing batch engine
  (:class:`~repro.engine.runner.BatchRunner`,
  :class:`~repro.faults.campaign.FaultCampaign`, one shared
  :class:`~repro.engine.cache.CalibrationCache`), honoring
  ``backend=`` / ``n_workers=`` with result-equivalent numbers;
* :mod:`~repro.scenarios.baseline` — the golden-baseline harness:
  :func:`~repro.scenarios.baseline.record` writes a canonical,
  seed-deterministic artifact (integer signatures exact, floats with
  explicit tolerances), :func:`~repro.scenarios.baseline.check`
  replays and reports drift by step and field.

The CLI front end is ``python -m repro scenarios run|record|check``;
example specs live under ``examples/scenarios/`` and the committed
regression baselines under ``tests/baselines/scenarios/``.  See
``DESIGN.md`` for the architecture and ``EXPERIMENTS.md`` for how the
shipped baselines were recorded.
"""

from .baseline import Baseline, CheckReport, check, default_baseline_path, load, record
from .compiler import CompiledScenario, CompiledStep, compile_scenario, run_scenario
from .result import (
    DEFAULT_ABS_TOL,
    DEFAULT_REL_TOL,
    Drift,
    DriftReport,
    ScenarioResult,
    StepResult,
    diff,
)
from .spec import (
    STEP_KINDS,
    AnalyzerSettings,
    CoverageStep,
    DiagnoseStep,
    DistortionStep,
    DUTSpec,
    DynamicRangeStep,
    PseudorandomStep,
    ScenarioSpec,
    SignatureCheckStep,
    SweepStep,
    YieldStep,
    scenario_from_payload,
    scenario_to_payload,
    step_from_payload,
    step_to_payload,
)

__all__ = [
    "AnalyzerSettings",
    "Baseline",
    "CheckReport",
    "CompiledScenario",
    "CompiledStep",
    "CoverageStep",
    "DEFAULT_ABS_TOL",
    "DEFAULT_REL_TOL",
    "DiagnoseStep",
    "DistortionStep",
    "Drift",
    "DriftReport",
    "DUTSpec",
    "DynamicRangeStep",
    "PseudorandomStep",
    "STEP_KINDS",
    "ScenarioResult",
    "ScenarioSpec",
    "SignatureCheckStep",
    "StepResult",
    "SweepStep",
    "YieldStep",
    "check",
    "compile_scenario",
    "default_baseline_path",
    "diff",
    "load",
    "record",
    "run_scenario",
    "scenario_from_payload",
    "scenario_to_payload",
    "step_from_payload",
    "step_to_payload",
]
