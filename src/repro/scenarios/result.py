"""Scenario results and golden-baseline drift detection.

A :class:`ScenarioResult` is the canonical, comparable outcome of one
scenario run.  Every step contributes one :class:`StepResult` that
splits its payload into two channels with different comparison
semantics:

* ``exact`` — integer signature counts, verdict strings, labels,
  booleans.  These derive from counted sigma-delta signatures and are
  **bit-identical** across backends, worker counts and platforms; any
  difference is a genuine regression.
* ``floats`` — derived continuous quantities (dB gains, interval
  endpoints, yield fractions).  These are compared within an explicit
  recorded tolerance: the reference and vectorized backends agree to a
  few ulp (NumPy vs :mod:`math` elementwise rounding), and the recorded
  tolerance makes that contract part of the artifact instead of
  something a reader has to know.

:func:`diff` compares a recorded result against a replayed one and
produces a :class:`DriftReport` whose entries name the step and field
that moved — the human-readable core of the golden-baseline harness
(:mod:`repro.scenarios.baseline`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..errors import ConfigError

#: Default relative/absolute float tolerances recorded into baselines.
#: Backend equivalence is ulp-level (~1e-15 relative); 1e-9 leaves three
#: orders of magnitude of slack for cross-platform libm variation while
#: still catching any real numeric change.
DEFAULT_REL_TOL = 1e-9
DEFAULT_ABS_TOL = 1e-12


@dataclass(frozen=True)
class StepResult:
    """Canonical outcome of one scenario step."""

    kind: str
    name: str
    exact: dict
    floats: dict

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("step result needs a step name")
        for key, value in self.floats.items():
            values = value if isinstance(value, list) else [value]
            for x in values:
                if not isinstance(x, (int, float)) or not math.isfinite(x):
                    raise ConfigError(
                        f"step {self.name!r}: float field {key!r} contains "
                        f"non-finite value {x!r}"
                    )

    def headline(self) -> str:
        """A one-line human summary for CLI tables."""
        if self.kind == "sweep":
            return f"{len(self.floats['frequency_hz'])} points"
        if self.kind == "yield":
            return (
                f"test yield {self.floats['test_yield']:.3f} "
                f"(true {self.floats['true_yield']:.3f})"
            )
        if self.kind == "coverage":
            return (
                f"coverage {self.floats['coverage']:.3f}, "
                f"flagged {self.floats['flagged']:.3f}"
            )
        if self.kind == "distortion":
            return f"{len(self.floats['level_dbc'])} harmonic levels"
        if self.kind == "diagnose":
            verdict = "correct" if self.exact["correct"] else "incorrect"
            return f"best {self.exact['best']!r} ({verdict})"
        if self.kind == "dynamic_range":
            return f"{self.floats['dynamic_range_db']:.0f} dB"
        if self.kind == "pseudorandom":
            return (
                f"coverage {self.floats['coverage']:.3f}, "
                f"aliasing {self.floats['aliasing_rate']:.4f}"
            )
        if self.kind == "signature_check":
            verdict = "match" if self.exact["match"] else "mismatch"
            return (
                f"{verdict} (0x{self.exact['measured_signature']:x} vs "
                f"golden 0x{self.exact['golden_signature']:x})"
            )
        return f"{len(self.exact)} exact / {len(self.floats)} float fields"


@dataclass(frozen=True)
class ScenarioResult:
    """All step results of one scenario run, plus comparison metadata.

    ``backend`` records the engine backend the run was *configured*
    with; it is metadata, not part of the comparison — a baseline
    recorded on one backend must check clean on the other.
    """

    scenario: str
    backend: str
    steps: tuple[StepResult, ...]
    rel_tol: float = DEFAULT_REL_TOL
    abs_tol: float = DEFAULT_ABS_TOL

    def __post_init__(self) -> None:
        object.__setattr__(self, "steps", tuple(self.steps))
        if not self.steps:
            raise ConfigError(f"scenario result {self.scenario!r} has no steps")
        if not (self.rel_tol >= 0 and self.abs_tol >= 0):
            raise ConfigError(
                f"tolerances must be >= 0, got rel={self.rel_tol!r} "
                f"abs={self.abs_tol!r}"
            )

    def step(self, name: str) -> StepResult:
        for step in self.steps:
            if step.name == name:
                return step
        raise ConfigError(
            f"scenario result {self.scenario!r} has no step {name!r}; "
            f"have {[s.name for s in self.steps]}"
        )


# ----------------------------------------------------------------------
# Drift detection
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Drift:
    """One recorded-vs-replayed discrepancy, naming step and field."""

    step: str
    field: str
    detail: str

    def __str__(self) -> str:
        return f"step {self.step!r} field {self.field!r}: {self.detail}"


@dataclass(frozen=True)
class DriftReport:
    """Outcome of comparing a replay against a recorded baseline."""

    scenario: str
    drifts: tuple[Drift, ...] = field(default_factory=tuple)

    @property
    def ok(self) -> bool:
        return not self.drifts

    def report(self) -> str:
        """Human-readable drift summary."""
        if self.ok:
            return f"scenario {self.scenario!r}: baseline OK (no drift)"
        lines = [
            f"scenario {self.scenario!r}: {len(self.drifts)} drift(s) detected"
        ]
        lines.extend(f"  - {drift}" for drift in self.drifts)
        return "\n".join(lines)


def _first_unequal(a: list, b: list):
    """Index and values of the first elementwise difference (or None)."""
    for i, (x, y) in enumerate(zip(a, b)):
        if x != y:
            return i, x, y
    if len(a) != len(b):
        return min(len(a), len(b)), None, None
    return None


def _diff_exact(step: str, recorded: dict, replayed: dict, out: list) -> None:
    for key in sorted(set(recorded) | set(replayed)):
        if key not in replayed:
            out.append(Drift(step, key, "missing from replay"))
            continue
        if key not in recorded:
            out.append(Drift(step, key, "not in recorded baseline"))
            continue
        a, b = recorded[key], replayed[key]
        if a == b:
            continue
        if isinstance(a, list) and isinstance(b, list):
            where = _first_unequal(a, b)
            if where is not None and where[1] is not None:
                i, x, y = where
                out.append(
                    Drift(step, key, f"[{i}]: recorded {x!r}, replayed {y!r}")
                )
                continue
            out.append(
                Drift(step, key, f"length {len(a)} recorded, {len(b)} replayed")
            )
            continue
        out.append(Drift(step, key, f"recorded {a!r}, replayed {b!r}"))


def _close(a: float, b: float, rel: float, abs_tol: float) -> bool:
    return math.isclose(a, b, rel_tol=rel, abs_tol=abs_tol)


def _diff_floats(
    step: str, recorded: dict, replayed: dict, rel: float, abs_tol: float, out: list
) -> None:
    for key in sorted(set(recorded) | set(replayed)):
        if key not in replayed:
            out.append(Drift(step, key, "missing from replay"))
            continue
        if key not in recorded:
            out.append(Drift(step, key, "not in recorded baseline"))
            continue
        a, b = recorded[key], replayed[key]
        if isinstance(a, list) != isinstance(b, list):
            out.append(Drift(step, key, f"shape changed: {a!r} vs {b!r}"))
            continue
        if not isinstance(a, list):
            a, b = [a], [b]
            scalar = True
        else:
            scalar = False
        if len(a) != len(b):
            out.append(
                Drift(step, key, f"length {len(a)} recorded, {len(b)} replayed")
            )
            continue
        for i, (x, y) in enumerate(zip(a, b)):
            if not _close(x, y, rel, abs_tol):
                where = key if scalar else f"{key}[{i}]"
                out.append(
                    Drift(
                        step,
                        key,
                        f"{where}: recorded {x!r}, replayed {y!r} "
                        f"(|delta| = {abs(x - y):.3g}, tolerance "
                        f"rel={rel:g} abs={abs_tol:g})",
                    )
                )
                break  # one drift per field keeps the report readable


def diff(recorded: ScenarioResult, replayed: ScenarioResult) -> DriftReport:
    """Compare a replayed result against the recorded baseline.

    Exact channels must match bit-identically; float channels must agree
    within the *recorded* tolerances (the baseline, not the replay,
    owns the contract).  Structural changes — steps added, removed or
    renamed — are reported as drift too.
    """
    drifts: list[Drift] = []
    recorded_names = [s.name for s in recorded.steps]
    replayed_names = [s.name for s in replayed.steps]
    if recorded_names != replayed_names:
        drifts.append(
            Drift(
                "<scenario>",
                "steps",
                f"recorded steps {recorded_names}, replayed {replayed_names}",
            )
        )
    by_name = {s.name: s for s in replayed.steps}
    for step in recorded.steps:
        other = by_name.get(step.name)
        if other is None:
            continue
        if step.kind != other.kind:
            drifts.append(
                Drift(
                    step.name,
                    "kind",
                    f"recorded {step.kind!r}, replayed {other.kind!r}",
                )
            )
            continue
        _diff_exact(step.name, step.exact, other.exact, drifts)
        _diff_floats(
            step.name,
            step.floats,
            other.floats,
            recorded.rel_tol,
            recorded.abs_tol,
            drifts,
        )
    return DriftReport(scenario=recorded.scenario, drifts=tuple(drifts))
