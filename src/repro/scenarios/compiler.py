"""The scenario compiler: lower declarative specs onto the session layer.

Compilation and execution are deliberately separate phases:

* :func:`compile_scenario` turns a :class:`~repro.scenarios.spec.ScenarioSpec`
  into a :class:`CompiledScenario` — device built, analyzer
  configurations derived, fault catalogs enumerated, spec masks and
  go/no-go programs constructed, sweep grids planned.  No measurement
  runs; compile errors (an ``inject`` label missing from the catalog, a
  sweep collapsing after band clamping) surface before any simulation
  time is spent.
* :meth:`CompiledScenario.run` executes the compiled steps in order on
  one shared :class:`~repro.api.session.Session` — every step becomes a
  call on the session's uniform workload surface (``sweep``,
  ``yield_lot``, ``fault_coverage``, ``distortion``, ``diagnose``,
  ``dynamic_range``), so the whole scenario shares a single
  :class:`~repro.engine.cache.CalibrationCache` and one
  :class:`~repro.engine.runner.BatchRunner`, and ``backend=`` /
  ``n_workers=`` select the execution strategy without changing the
  numbers (the engine's equivalence contract).

Step results reuse the session layer's channelization
(:mod:`repro.api.channels`) verbatim, which is what makes a scenario
replayed through :meth:`repro.api.session.Session.run_scenario`
byte-identical to one recorded before the session layer existed.  The
result is a canonical :class:`~repro.scenarios.result.ScenarioResult`
ready for golden-baseline recording (:mod:`repro.scenarios.baseline`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..api.policy import ExecutionPolicy
from ..api.session import Session
from ..bist.limits import SpecMask
from ..bist.program import BISTProgram
from ..core.config import AnalyzerConfig
from ..core.sweep import FrequencySweepPlan
from ..dut.active_rc import ActiveRCLowpass, design_mfb_lowpass
from ..dut.faults import fault_catalog, full_catalog
from ..dut.nonlinear import WienerDUT, polynomial_for_distortion
from ..engine.cache import CalibrationCache
from ..engine.runner import BatchRunner
from ..errors import ConfigError
from ..faults.campaign import FaultCampaign
from ..faults.dictionary import NOMINAL_LABEL
from ..prbist.campaign import PseudorandomPlan, derive_lfsr_seed
from ..prbist.lfsr import LFSRConfig
from ..prbist.misr import MISRConfig
from ..sc.opamp import OpAmpModel
from .result import ScenarioResult, StepResult
from .spec import (
    CoverageStep,
    DiagnoseStep,
    DistortionStep,
    DynamicRangeStep,
    PseudorandomStep,
    ScenarioSpec,
    SignatureCheckStep,
    SweepStep,
    YieldStep,
)


def base_config(spec: ScenarioSpec) -> AnalyzerConfig:
    """The scenario's analyzer configuration.

    Evaluator and generator noise (when enabled) are seeded from the
    scenario seed, so noisy scenarios replay exactly — and every
    combination stays vectorized-backend eligible: a noisy generator
    renders as a batched per-device stimulus there (see
    :mod:`repro.engine.vectorized`).
    """
    settings = spec.analyzer
    noisy = settings.evaluator_noise_rms > 0 or settings.generator_noise_rms > 0
    return AnalyzerConfig.ideal(
        m_periods=settings.m_periods,
        stimulus_amplitude=settings.stimulus_amplitude,
        evaluator_opamp=(
            OpAmpModel(noise_rms=settings.evaluator_noise_rms)
            if settings.evaluator_noise_rms > 0
            else None
        ),
        generator_opamp=(
            OpAmpModel(noise_rms=settings.generator_noise_rms)
            if settings.generator_noise_rms > 0
            else None
        ),
        noise_seed=spec.seed if noisy else None,
    )


def _signed_deviations(magnitudes) -> list[float]:
    return sorted({sign * d for d in magnitudes for sign in (-1.0, 1.0)})


def _catalog(magnitudes, catastrophic: bool):
    deviations = _signed_deviations(magnitudes)
    return full_catalog(deviations) if catastrophic else fault_catalog(deviations)


def _floats(values) -> list[float]:
    return [float(v) for v in values]


@dataclass(frozen=True)
class CompiledStep:
    """One lowered step: its spec, workload size, and executor."""

    step: object
    n_jobs: int  # engine jobs this step dispatches (the workload size)
    execute: Callable[[Session], StepResult]


class CompiledScenario:
    """A scenario lowered onto the session layer, ready to run."""

    def __init__(
        self, spec: ScenarioSpec, config: AnalyzerConfig, steps: tuple[CompiledStep, ...]
    ) -> None:
        self.spec = spec
        self.config = config
        self.steps = steps

    @property
    def n_jobs(self) -> int:
        """Total engine jobs the scenario dispatches."""
        return sum(s.n_jobs for s in self.steps)

    def run(
        self,
        backend: str | None = None,
        n_workers: int | None = None,
        runner: BatchRunner | None = None,
        cache: CalibrationCache | None = None,
        session: Session | None = None,
        obs=None,
        chunk_size: int | None = None,
    ) -> ScenarioResult:
        """Execute every step in order on one shared session.

        ``backend``, ``n_workers`` and ``chunk_size`` override the
        spec's defaults; pass an existing ``session`` (or legacy
        ``runner``) to also share its calibration cache and worker pool
        across scenarios (the overrides are then ignored in favour of
        the session's own policy).  ``obs`` threads a trace recorder
        through the one-shot session (see :mod:`repro.obs`); an adopted
        session already brings its own recorder.
        """
        if session is not None:
            if obs is not None:
                raise ConfigError(
                    "pass either session= or obs=, not both: an adopted "
                    "session brings its own trace recorder"
                )
            return self._run_on(session)
        if runner is not None:
            return self._run_on(Session(runner=runner, obs=obs))
        policy = ExecutionPolicy(
            backend=backend if backend is not None else self.spec.backend,
            n_workers=n_workers if n_workers is not None else self.spec.n_workers,
            seed=self.spec.seed,
            chunk_size=(
                chunk_size if chunk_size is not None else self.spec.chunk_size
            ),
        )
        with Session(policy=policy, cache=cache, obs=obs) as shared:
            return self._run_on(shared)

    def _run_on(self, session: Session) -> ScenarioResult:
        obs = session.obs
        with obs.span(
            f"scenario:{self.spec.name}",
            kind="scenario",
            exact={"n_steps": len(self.steps)},
        ):
            results = []
            for compiled in self.steps:
                # The span is named by the *step*, not its headline:
                # step names are path-stable identifiers (trace diffs
                # report by span path), so the human-readable headline
                # rides along as an exact attribute instead.
                with obs.span(
                    compiled.step.name,
                    kind="scenario.step",
                    exact={
                        "step_kind": compiled.step.kind,
                        "n_jobs": compiled.n_jobs,
                    },
                ) as span:
                    result = compiled.execute(session)
                    span.annotate(headline=result.headline())
                results.append(result)
        return ScenarioResult(
            scenario=self.spec.name,
            backend=session.runner.backend,
            steps=tuple(results),
        )


def run_scenario(
    spec: ScenarioSpec,
    backend: str | None = None,
    n_workers: int | None = None,
    runner: BatchRunner | None = None,
    cache: CalibrationCache | None = None,
    session: Session | None = None,
    obs=None,
    chunk_size: int | None = None,
) -> ScenarioResult:
    """Compile and execute a scenario in one call."""
    return compile_scenario(spec).run(
        backend=backend,
        n_workers=n_workers,
        runner=runner,
        cache=cache,
        session=session,
        obs=obs,
        chunk_size=chunk_size,
    )


# ----------------------------------------------------------------------
# Per-kind lowering
# ----------------------------------------------------------------------

def compile_scenario(spec: ScenarioSpec) -> CompiledScenario:
    """Lower a spec into session-ready steps (no simulation runs here)."""
    config = base_config(spec)
    dut = ActiveRCLowpass.from_specs(cutoff=spec.dut.cutoff, q=spec.dut.q)
    lowered = []
    for step in spec.steps:
        compiler = _STEP_COMPILERS[step.kind]
        lowered.append(compiler(spec, step, dut, config))
    return CompiledScenario(spec, config, tuple(lowered))


def _step_result(step, result) -> StepResult:
    """A session result reshaped as this step's canonical record."""
    return StepResult(step.kind, step.name, result.exact, result.floats)


def _step_config(config: AnalyzerConfig, step) -> tuple[AnalyzerConfig, int]:
    m = step.m_periods if step.m_periods is not None else config.m_periods
    return config.with_m_periods(m), m


def _compile_sweep(spec, step: SweepStep, dut, config) -> CompiledStep:
    config, m = _step_config(config, step)
    plan = FrequencySweepPlan(step.f_start, step.f_stop, step.n_points)
    frequencies = _floats(plan.frequencies())

    def execute(session: Session) -> StepResult:
        return _step_result(
            step,
            session.sweep(
                frequencies, m_periods=m, dut=dut, config=config, name=step.name
            ),
        )

    return CompiledStep(step, n_jobs=step.n_points, execute=execute)


def _compile_yield(spec, step: YieldStep, dut, config) -> CompiledStep:
    config, m = _step_config(config, step)
    nominal = design_mfb_lowpass(spec.dut.cutoff, q=spec.dut.q)
    golden = ActiveRCLowpass(nominal)
    frequencies = [spec.dut.cutoff * r for r in step.frequency_ratios]
    mask = SpecMask.from_golden(golden, frequencies, tolerance_db=step.tolerance_db)
    program = BISTProgram(mask, frequencies, m_periods=m)

    def execute(session: Session) -> StepResult:
        return _step_result(
            step,
            session.yield_lot(
                nominal,
                mask,
                program,
                n_devices=step.n_devices,
                component_sigma=step.component_sigma,
                ambiguous_passes=step.ambiguous_passes,
                seed=spec.seed,
                config=config,
                name=step.name,
            ),
        )

    return CompiledStep(step, n_jobs=step.n_devices, execute=execute)


def _compile_coverage(spec, step: CoverageStep, dut, config) -> CompiledStep:
    config, m = _step_config(config, step)
    catalog = _catalog(step.deviations, step.catastrophic)
    frequencies = [spec.dut.cutoff * r for r in step.frequency_ratios]
    mask = SpecMask.from_golden(dut, frequencies, tolerance_db=step.tolerance_db)
    program = BISTProgram(mask, frequencies, m_periods=m)

    def execute(session: Session) -> StepResult:
        return _step_result(
            step,
            session.fault_coverage(
                catalog, program, dut=dut, config=config, name=step.name
            ),
        )

    return CompiledStep(step, n_jobs=len(catalog) + 1, execute=execute)


def _compile_distortion(spec, step: DistortionStep, dut, config) -> CompiledStep:
    config, m = _step_config(config, step)
    config = config.with_amplitude(step.amplitude)
    # The polynomial is a property of the device: tuned once, at the
    # first requested operating point (same convention as the CLI).
    level = step.amplitude * dut.gain_at(step.fwaves[0])
    wiener = WienerDUT(
        dut, polynomial_for_distortion(level, step.hd2_dbc, step.hd3_dbc)
    )

    def execute(session: Session) -> StepResult:
        return _step_result(
            step,
            session.distortion(
                step.fwaves,
                harmonics=step.harmonics,
                m_periods=m,
                dut=wiener,
                config=config,
                name=step.name,
            ),
        )

    return CompiledStep(step, n_jobs=len(step.fwaves), execute=execute)


def _compile_diagnose(spec, step: DiagnoseStep, dut, config) -> CompiledStep:
    config, m = _step_config(config, step)
    catalog = _catalog(step.deviations, step.catastrophic)
    by_label = {f.label: f for f in catalog}
    if step.inject != NOMINAL_LABEL and step.inject not in by_label:
        raise ConfigError(
            f"step {step.name!r}: inject {step.inject!r} is not in the "
            f"catalog; choose from {sorted(by_label)} or {NOMINAL_LABEL!r}"
        )
    if step.n_probes > step.n_candidate_points:
        raise ConfigError(
            f"step {step.name!r}: n_probes {step.n_probes} exceeds "
            f"n_candidate_points {step.n_candidate_points}"
        )
    plan = FrequencySweepPlan.around(
        spec.dut.cutoff, decades=step.decades, n_points=step.n_candidate_points
    )
    campaign = FaultCampaign(dut, catalog, plan, config=config, m_periods=m)
    device = (
        dut if step.inject == NOMINAL_LABEL else by_label[step.inject].apply(dut)
    )

    def execute(session: Session) -> StepResult:
        return _step_result(
            step,
            session.diagnose(
                campaign=campaign,
                device=device,
                inject=step.inject,
                n_probes=step.n_probes,
                top_n=step.top_n,
                name=step.name,
            ),
        )

    return CompiledStep(step, n_jobs=len(catalog) + 2, execute=execute)


def _prbist_plan(spec, step) -> tuple[PseudorandomPlan, MISRConfig]:
    """The step's stimulus plan and signature register.

    The LFSR seed derives from the *scenario* seed (mapped onto the
    non-zero state range), so the pattern sequence — like the yield
    lot's component draws — is a function of the spec alone.
    """
    lfsr = LFSRConfig(
        width=step.lfsr_width,
        form=step.lfsr_form,
        seed=derive_lfsr_seed(spec.seed, step.lfsr_width),
    )
    plan = PseudorandomPlan(
        lfsr, n_patterns=step.n_patterns, f_lo=step.f_lo, f_hi=step.f_hi
    )
    return plan, MISRConfig(width=step.misr_width)


def _compile_pseudorandom(spec, step: PseudorandomStep, dut, config) -> CompiledStep:
    config, m = _step_config(config, step)
    catalog = _catalog(step.deviations, step.catastrophic)
    plan, misr = _prbist_plan(spec, step)

    def execute(session: Session) -> StepResult:
        return _step_result(
            step,
            session.pseudorandom_coverage(
                catalog,
                plan,
                misr=misr,
                dut=dut,
                config=config,
                m_periods=m,
                name=step.name,
            ),
        )

    return CompiledStep(step, n_jobs=len(catalog) + 1, execute=execute)


def _compile_signature_check(spec, step: SignatureCheckStep, dut, config) -> CompiledStep:
    config, m = _step_config(config, step)
    catalog = _catalog(step.deviations, step.catastrophic)
    by_label = {f.label: f for f in catalog}
    if step.inject != NOMINAL_LABEL and step.inject not in by_label:
        raise ConfigError(
            f"step {step.name!r}: inject {step.inject!r} is not in the "
            f"catalog; choose from {sorted(by_label)} or {NOMINAL_LABEL!r}"
        )
    plan, misr = _prbist_plan(spec, step)
    device = (
        dut if step.inject == NOMINAL_LABEL else by_label[step.inject].apply(dut)
    )

    def execute(session: Session) -> StepResult:
        return _step_result(
            step,
            session.signature_check(
                device,
                plan,
                misr=misr,
                inject=step.inject,
                dut=dut,
                config=config,
                m_periods=m,
                name=step.name,
            ),
        )

    return CompiledStep(step, n_jobs=2, execute=execute)


def _compile_dynamic_range(spec, step: DynamicRangeStep, dut, config) -> CompiledStep:
    config, m = _step_config(config, step)

    def execute(session: Session) -> StepResult:
        return _step_result(
            step,
            session.dynamic_range(
                m_periods=m,
                levels_dbc=step.levels_dbc,
                threshold_db=step.threshold_db,
                harmonic=step.harmonic,
                name=step.name,
            ),
        )

    return CompiledStep(step, n_jobs=len(step.levels_dbc), execute=execute)


_STEP_COMPILERS = {
    SweepStep.kind: _compile_sweep,
    YieldStep.kind: _compile_yield,
    CoverageStep.kind: _compile_coverage,
    DistortionStep.kind: _compile_distortion,
    DiagnoseStep.kind: _compile_diagnose,
    DynamicRangeStep.kind: _compile_dynamic_range,
    PseudorandomStep.kind: _compile_pseudorandom,
    SignatureCheckStep.kind: _compile_signature_check,
}
