"""Analytical area model for the 0.35 um prototype.

The paper reports: generator 0.15 mm^2, evaluator 0.065 mm^2 (Fig. 6),
and an estimated 300 um x 300 um (0.09 mm^2) for a direct 16-bit
synthesis of the digital evaluator logic.  We cannot measure a die, so
the reproduction provides an *analytical* model built from the block
inventory our behavioural netlists already know:

* capacitors dominate SC area; each normalized unit capacitor costs
  ``unit_cap_area`` (a ~0.25 pF poly-poly unit plus matching spacing in
  0.35 um is around 1800 um^2), and the fully differential realization
  doubles the count;
* each folded-cascode amplifier (Fig. 3: 17 transistors + bias) costs
  ``amp_area``;
* each dynamic-latch comparator costs ``comparator_area``;
* switches, clock drivers and routing are an overhead fraction.

With typical 0.35 um constants the model lands on the paper's reported
numbers within ~10 %, which is the point: the evaluator is small because
its analog content is only two 1st-order modulators — the architectural
argument of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError
from ..generator.capacitor_array import TimeVariantCapacitorArray
from ..generator.design import PAPER_CAPACITORS
from ..sc.biquad import BiquadCapacitors

#: Paper-reported silicon areas.
PAPER_GENERATOR_MM2 = 0.15
PAPER_EVALUATOR_MM2 = 0.065
PAPER_DIGITAL_DSP_UM2 = 300.0 * 300.0  # "300um x 300um approximately"


@dataclass(frozen=True)
class AreaReport:
    """Block-level area breakdown in um^2."""

    capacitors_um2: float
    amplifiers_um2: float
    comparators_um2: float
    overhead_um2: float

    @property
    def total_um2(self) -> float:
        return (
            self.capacitors_um2
            + self.amplifiers_um2
            + self.comparators_um2
            + self.overhead_um2
        )

    @property
    def total_mm2(self) -> float:
        return self.total_um2 / 1e6


@dataclass(frozen=True)
class AreaModel:
    """Area constants for a 0.35 um mixed-signal process.

    Parameters
    ----------
    unit_cap_area:
        Area per normalized unit capacitor including matching spacing
        (um^2).
    amp_area:
        Folded-cascode amplifier with bias and CMFB (um^2).
    comparator_area:
        Dynamic latch comparator (um^2).
    overhead_fraction:
        Switches, clock drivers, routing as a fraction of core area.
    gate_area:
        Std-cell gate-equivalent area for digital estimates (um^2).
    """

    unit_cap_area: float = 1800.0
    amp_area: float = 15000.0
    comparator_area: float = 5000.0
    overhead_fraction: float = 0.12
    gate_area: float = 45.0

    def __post_init__(self) -> None:
        for name in ("unit_cap_area", "amp_area", "comparator_area", "gate_area"):
            if not getattr(self, name) > 0:
                raise ConfigError(f"{name} must be positive")
        if not 0 <= self.overhead_fraction < 1:
            raise ConfigError(
                f"overhead_fraction must be in [0, 1), got {self.overhead_fraction!r}"
            )

    # ------------------------------------------------------------------
    def generator_area(
        self, caps: BiquadCapacitors = PAPER_CAPACITORS
    ) -> AreaReport:
        """Area of the sinewave generator (Fig. 6a block)."""
        array = TimeVariantCapacitorArray()
        biquad_units = caps.a + caps.b + caps.c + caps.d + caps.f + caps.e
        total_units = (biquad_units + array.total_capacitance()) * 2.0  # differential
        cap_area = total_units * self.unit_cap_area
        amp_area = 2.0 * self.amp_area
        core = cap_area + amp_area
        return AreaReport(
            capacitors_um2=cap_area,
            amplifiers_um2=amp_area,
            comparators_um2=0.0,
            overhead_um2=core * self.overhead_fraction / (1 - self.overhead_fraction),
        )

    def evaluator_area(self, integrator_gain: float = 0.4) -> AreaReport:
        """Area of the sinewave evaluator's analog part (Fig. 6b block).

        Two matched 1st-order modulators; each has a feedback capacitor
        (1 unit), an input capacitor (``CI = gain * CF``), reference DACs
        (~1 unit), all differential, one amplifier and one comparator.
        """
        if not integrator_gain > 0:
            raise ConfigError(
                f"integrator gain must be positive, got {integrator_gain!r}"
            )
        per_modulator_units = (1.0 + integrator_gain + 1.0) * 2.0  # differential
        cap_area = 2.0 * per_modulator_units * self.unit_cap_area
        amp_area = 2.0 * self.amp_area
        comp_area = 2.0 * self.comparator_area
        core = cap_area + amp_area + comp_area
        return AreaReport(
            capacitors_um2=cap_area,
            amplifiers_um2=amp_area,
            comparators_um2=comp_area,
            overhead_um2=core * self.overhead_fraction / (1 - self.overhead_fraction),
        )

    def digital_dsp_area(self, word_length: int = 16) -> float:
        """Std-cell estimate of the evaluator's digital logic (um^2).

        Four up/down counters plus modulation sequencing and the small
        arithmetic datapath; roughly 125 gate-equivalents per counter bit
        covers the paper's non-optimized direct synthesis.
        """
        if word_length < 4:
            raise ConfigError(f"word_length must be >= 4, got {word_length}")
        gates = 125 * word_length  # counters, sequencer, datapath share
        return gates * self.gate_area
