"""Silicon area estimation (paper Section IV / III.B area figures)."""

from .estimate import (
    AreaModel,
    AreaReport,
    PAPER_DIGITAL_DSP_UM2,
    PAPER_EVALUATOR_MM2,
    PAPER_GENERATOR_MM2,
)

__all__ = [
    "AreaModel",
    "AreaReport",
    "PAPER_GENERATOR_MM2",
    "PAPER_EVALUATOR_MM2",
    "PAPER_DIGITAL_DSP_UM2",
]
