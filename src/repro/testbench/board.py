"""The demonstrator board (paper Section IV, Fig. 7).

"As a proof-of-concept, the network analyzer shown in Fig. 1 has been
built on a test board", routing the integrated generator and evaluator
around a discrete active-RC DUT, with a relay implementing the
calibration bypass.  :class:`DemonstratorBoard` is that board: it owns
the signal routing and exposes exactly two paths — through the DUT or
around it.
"""

from __future__ import annotations

from ..dut.base import DUT, PassthroughDUT
from ..errors import ConfigError
from ..generator.sinewave_generator import SinewaveGenerator
from ..signals.waveform import Waveform


class DemonstratorBoard:
    """Signal routing between generator, DUT and evaluator.

    Parameters
    ----------
    dut:
        The device mounted on the board.
    """

    #: Valid routing states of the calibration relay.
    PATHS = ("dut", "calibration")

    def __init__(self, dut: DUT) -> None:
        self.dut = dut
        self._path = "dut"
        self.relay_switch_count = 0

    # ------------------------------------------------------------------
    @property
    def path(self) -> str:
        """Current routing: ``"dut"`` or ``"calibration"``."""
        return self._path

    def select_path(self, path: str) -> None:
        """Switch the calibration relay."""
        if path not in self.PATHS:
            raise ConfigError(f"unknown path {path!r}; valid: {self.PATHS}")
        if path != self._path:
            self._path = path
            self.relay_switch_count += 1

    def active_route(self) -> DUT:
        """The block currently between generator and evaluator."""
        if self._path == "dut":
            return self.dut
        return PassthroughDUT()

    # ------------------------------------------------------------------
    def run_stimulus(
        self,
        generator: SinewaveGenerator,
        n_periods: int,
        settle_periods: int = 12,
        dut_lead_periods: int = 0,
    ) -> Waveform:
        """Drive the generator through the selected path.

        Returns the waveform arriving at the evaluator input, with the
        generator settling head and ``dut_lead_periods`` of DUT transient
        already discarded (whole periods, preserving phase alignment).
        """
        if dut_lead_periods < 0:
            raise ConfigError(
                f"dut_lead_periods must be >= 0, got {dut_lead_periods}"
            )
        clock = generator.clock
        held = generator.render_held(
            n_periods=n_periods + dut_lead_periods, settle_periods=settle_periods
        )
        route = self.active_route()
        route.reset()
        response = route.process(held)
        return response.slice_samples(dut_lead_periods * clock.oversampling_ratio)

    def describe(self) -> str:
        """One-line board status for logs."""
        return (
            f"DemonstratorBoard(path={self._path!r}, dut={self.dut.name!r}, "
            f"relay switches={self.relay_switch_count})"
        )
