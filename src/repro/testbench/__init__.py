"""Lab-bench simulation: the paper's Fig. 7 test setup.

* :class:`~repro.testbench.ate.DigitalATE` — the Agilent 93000 stand-in:
  generates digital control and clock programs, sources calibration
  multitones, acquires bitstreams, and hosts the signature DSP;
* :class:`~repro.testbench.board.DemonstratorBoard` — the demonstrator
  board: routing between generator, DUT and evaluator including the
  calibration bypass relay;
* :class:`~repro.testbench.oscilloscope.SpectrumScope` — the LeCroy
  WaveSurfer stand-in: an independent FFT instrument used as the
  reference for the harmonic-distortion comparison.
"""

from .ate import DigitalATE
from .board import DemonstratorBoard
from .oscilloscope import SpectrumScope

__all__ = ["DigitalATE", "DemonstratorBoard", "SpectrumScope"]
