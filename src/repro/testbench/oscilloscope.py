"""Reference spectrum instrument (the paper's LeCroy WaveSurfer 422 role).

Fig. 10c overlays the analyzer's harmonic measurements on "the spectrum
measured with a digital oscilloscope".  :class:`SpectrumScope` plays that
role: an independent FFT instrument with (optionally) the front-end
limitations of a real scope — finite record length and an 8-bit ADC.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigError
from ..signals import metrics
from ..signals.spectrum import Spectrum
from ..signals.waveform import Waveform


class SpectrumScope:
    """A digital-oscilloscope-style FFT analyzer.

    Parameters
    ----------
    max_record:
        Maximum capture length in samples (None = unlimited).
    adc_bits:
        Vertical resolution; None models an ideal front end.  8 matches
        the WaveSurfer class of instrument.
    window:
        FFT window; the default rectangular window is correct for the
        coherent captures of the synchronous analyzer.
    """

    def __init__(
        self,
        max_record: int | None = None,
        adc_bits: int | None = None,
        window: str = "rectangular",
    ) -> None:
        if max_record is not None and max_record < 16:
            raise ConfigError(f"max_record must be >= 16, got {max_record}")
        if adc_bits is not None and not 4 <= adc_bits <= 24:
            raise ConfigError(f"adc_bits must be in 4..24, got {adc_bits}")
        self.max_record = max_record
        self.adc_bits = adc_bits
        self.window = window

    # ------------------------------------------------------------------
    def capture(self, waveform: Waveform, full_scale: float | None = None) -> Spectrum:
        """Digitize a waveform and return its spectrum.

        ``full_scale`` sets the ADC range (peak volts); default is the
        waveform's own peak (auto-ranging).
        """
        if self.max_record is not None and len(waveform) > self.max_record:
            waveform = waveform.slice_samples(0, self.max_record)
        if self.adc_bits is not None:
            fs = full_scale if full_scale is not None else max(waveform.peak(), 1e-12)
            levels = 2 ** (self.adc_bits - 1)
            lsb = fs / levels
            quantized = np.clip(
                np.round(waveform.samples / lsb) * lsb, -fs, fs
            )
            waveform = Waveform(quantized, waveform.sample_rate, waveform.t0)
        return Spectrum.from_waveform(waveform, window=self.window)

    # ------------------------------------------------------------------
    # Measurement conveniences mirroring scope math packages
    # ------------------------------------------------------------------
    def harmonic_levels_dbc(
        self, waveform: Waveform, fundamental: float, n_harmonics: int = 5
    ) -> dict[int, float]:
        """Harmonic levels relative to the carrier."""
        spectrum = self.capture(waveform)
        return metrics.harmonic_levels_dbc(spectrum, fundamental, n_harmonics)

    def thd_db(self, waveform: Waveform, fundamental: float) -> float:
        """THD (positive dB below carrier)."""
        spectrum = self.capture(waveform)
        return metrics.thd_db(spectrum, fundamental)

    def sfdr_db(
        self,
        waveform: Waveform,
        fundamental: float,
        band: tuple[float, float] | None = None,
    ) -> float:
        """Spurious-free dynamic range."""
        spectrum = self.capture(waveform)
        return metrics.sfdr_db(spectrum, fundamental, band=band)
