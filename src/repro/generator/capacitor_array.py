"""The time-variant input capacitor array (paper Fig. 2b, eqs. (1)-(2)).

Four capacitors ``CI_1..CI_4`` sized ``CI_k = 2 sin(k pi/8)`` unit
capacitors are connected to the biquad's input one at a time following the
Fig. 2c schedule; the ``phi_in`` switch phase selects whether the sampled
charge enters with positive or negative weight.  A fifth, zero-size "slot"
(``k = 0``, no capacitor switched) realizes the zero samples of the
staircase.  The result is the input charge sequence::

    q[n] = polarity(n) * CI_{k(n)} * Vin = 2 sin(2 pi n / 16) * Vin

Capacitor mismatch perturbs each ``CI_k`` independently, which is the
mechanism that converts the mathematically pure sampled sine into one with
low-order harmonic distortion — the in-band spurs of Fig. 8b.
"""

from __future__ import annotations

import numpy as np

from ..clocking.sequencer import GeneratorSequence, capacitor_weight
from ..errors import ConfigError
from ..sc.mismatch import MismatchModel


class TimeVariantCapacitorArray:
    """The switched input capacitor array ``CI(t)``.

    Parameters
    ----------
    mismatch:
        Capacitor mismatch model; ``None`` gives the nominal (ideal)
        weights.  Mismatch applies to ``CI_1..CI_4`` (there is no physical
        capacitor for the ``k = 0`` slot, so it stays exactly zero).
    switch_nonlinearity:
        Optional ``(a2, a3)`` weak charge-domain nonlinearity of the
        input switches: each sampled charge packet ``q`` is delivered as
        ``q + a2 q^2 + a3 q^3``.  Models signal-dependent charge
        injection / voltage-dependent switch resistance — the
        transistor-level effects that limited the fabricated prototype's
        spectral purity beyond capacitor mismatch.  ``None`` = ideal
        switches.
    """

    def __init__(
        self,
        mismatch: MismatchModel | None = None,
        switch_nonlinearity: tuple[float, float] | None = None,
    ) -> None:
        nominal = np.array([capacitor_weight(k) for k in range(5)])
        if mismatch is None:
            weights = nominal.copy()
        else:
            weights = nominal.copy()
            weights[1:] = mismatch.perturb_many(nominal[1:])
        self._weights = weights
        self._sequence = GeneratorSequence()
        if switch_nonlinearity is not None and len(switch_nonlinearity) != 2:
            raise ConfigError(
                f"switch_nonlinearity must be (a2, a3), got {switch_nonlinearity!r}"
            )
        self.switch_nonlinearity = switch_nonlinearity

    @property
    def weights(self) -> np.ndarray:
        """The (possibly mismatched) capacitor values ``CI_0..CI_4``."""
        return self._weights.copy()

    def nominal_weights(self) -> np.ndarray:
        """The ideal weights ``2 sin(k pi / 8)``."""
        return np.array([capacitor_weight(k) for k in range(5)])

    def capacitance_at(self, n) -> np.ndarray:
        """``CI(t_n)``: the selected capacitor value at generator cycle ``n``."""
        n = np.asarray(n)
        return self._weights[self._sequence.cap_index(n)]

    def charge_sequence(self, n_steps: int, vin: float) -> np.ndarray:
        """Signed input charge per cycle for a DC input ``vin``.

        This is the generator's stimulus to the biquad: for ideal weights
        and switches it equals ``2 sin(2 pi n / 16) * vin`` exactly; the
        optional switch nonlinearity deforms each charge packet.
        """
        if n_steps < 0:
            raise ConfigError(f"n_steps must be >= 0, got {n_steps}")
        idx = np.arange(n_steps)
        polarity = self._sequence.polarity(idx)
        charge = polarity * self.capacitance_at(idx) * float(vin)
        if self.switch_nonlinearity is not None:
            a2, a3 = self.switch_nonlinearity
            charge = charge + a2 * charge**2 + a3 * charge**3
        return charge

    def total_capacitance(self) -> float:
        """Sum of the array capacitors (for area estimation), unit caps."""
        return float(np.sum(self._weights[1:]))
