"""The switched-capacitor sinewave generator (paper Section III.A).

A Fleischer-Laker SC biquad whose input capacitor is replaced by a
time-variant array of four capacitors (``CI_k = 2 sin(k pi/8)``) switched
in the 16-step pattern of Fig. 2c.  The array synthesizes a 16-step
quantized sinewave from a programmable DC reference ``VA+ - VA-``; the
biquad filters it into a clean tone at ``fwave = fgen/16``.

Amplitude is programmed by the DC reference (Fig. 8a), frequency by the
clock (everything scales with the master clock), and the spectral purity
is limited only by sampling images (in continuous time) and analog
non-idealities — reproduced here via mismatch/op-amp/noise models.
"""

from .capacitor_array import TimeVariantCapacitorArray
from .control import GeneratorControl
from .design import (
    PAPER_CAPACITORS,
    PROTOTYPE_SWITCH_NONLINEARITY,
    amplitude_gain,
    design_summary,
    va_for_amplitude,
)
from .sinewave_generator import SinewaveGenerator
from . import multistep

__all__ = [
    "TimeVariantCapacitorArray",
    "GeneratorControl",
    "PAPER_CAPACITORS",
    "PROTOTYPE_SWITCH_NONLINEARITY",
    "amplitude_gain",
    "design_summary",
    "va_for_amplitude",
    "SinewaveGenerator",
    "multistep",
]
