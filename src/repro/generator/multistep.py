"""Generalized P-step sinewave synthesis — the generator's extension axis.

The paper's generator synthesizes a 16-step quantized sine because its
input array holds four capacitors (eq. (2): ``CI_k = 2 sin(k pi/8)``,
k = 0..4).  Nothing in the architecture pins P = 16: with ``P/4 + 1``
weights ``2 sin(2 pi k / P)`` and the same mirror/polarity sequencing,
any ``P = 8, 16, 32, ...`` (multiple of 4) works, trading capacitor
count for spectral purity — the held staircase's first images move from
``P - 1`` to higher orders and drop as ``1/(P - 1)``:

============  ==================  =====================
P (steps)     first image order   image level (dBc)
============  ==================  =====================
8             7                   -16.9
16 (paper)    15                  -23.5
32            31                  -29.8
============  ==================  =====================

This module provides the generalized sequencing and staircase math plus
a purity comparison helper; it is exercised by the extended ablation
bench and usable as a drop-in for architecture exploration (the clock
tree ratio ``fwave = fgen / P`` follows the chosen P).
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import ConfigError


def validate_steps(steps: int) -> None:
    """P must be a multiple of 4 (quarter-wave symmetric pattern), >= 8."""
    if not isinstance(steps, int) or steps < 8 or steps % 4 != 0:
        raise ConfigError(
            f"step count must be a multiple of 4 and >= 8, got {steps!r}"
        )


def capacitor_weights(steps: int) -> np.ndarray:
    """The array weights ``2 sin(2 pi k / P)`` for ``k = 0 .. P/4``.

    Generalizes paper eq. (2): for P = 16 this reproduces
    ``2 sin(k pi / 8)``, k = 0..4.
    """
    validate_steps(steps)
    k = np.arange(steps // 4 + 1)
    return 2.0 * np.sin(2.0 * math.pi * k / steps)


def capacitor_count(steps: int) -> int:
    """Physical capacitors needed (the k = 0 slot is free)."""
    validate_steps(steps)
    return steps // 4


def step_pattern(steps: int) -> tuple[np.ndarray, np.ndarray]:
    """(capacitor index, polarity) over one P-step period.

    The quarter-wave pattern of Fig. 2c generalized: indices ramp
    0..P/4 and mirror back within each half period; polarity flips for
    the second half.
    """
    validate_steps(steps)
    quarter = steps // 4
    half_indices = np.concatenate(
        [np.arange(quarter), quarter - np.arange(quarter)]
    )
    indices = np.concatenate([half_indices, half_indices])
    polarity = np.concatenate(
        [np.ones(steps // 2, dtype=int), -np.ones(steps // 2, dtype=int)]
    )
    return indices, polarity


def quantized_sine(steps: int, n_samples: int, amplitude: float = 1.0) -> np.ndarray:
    """The P-step quantized sine sequence (exactly sampled)."""
    validate_steps(steps)
    if n_samples < 0:
        raise ConfigError(f"n_samples must be >= 0, got {n_samples}")
    weights = capacitor_weights(steps)
    indices, polarity = step_pattern(steps)
    n = np.arange(n_samples) % steps
    return amplitude * 0.5 * polarity[n] * weights[indices[n]]


def first_image_order(steps: int) -> int:
    """Order of the lowest held-staircase image (``P - 1``)."""
    validate_steps(steps)
    return steps - 1


def image_level_dbc(steps: int, order: int | None = None) -> float:
    """Held-staircase image level relative to the fundamental (dBc).

    Defaults to the first image; image orders are ``P j +/- 1`` with
    amplitude exactly ``1/order``.
    """
    validate_steps(steps)
    m = order if order is not None else first_image_order(steps)
    residue = m % steps
    if residue not in (1, steps - 1) or m < 2:
        raise ConfigError(f"order {m} is not an image order for P = {steps}")
    return -20.0 * math.log10(m)


def purity_comparison(step_counts=(8, 16, 32)) -> list[dict]:
    """Capacitors vs purity across step counts (design-space table).

    Each entry: step count, physical capacitor count, total normalized
    capacitance of the array, first image order and its level.
    """
    rows = []
    for steps in step_counts:
        weights = capacitor_weights(steps)
        rows.append(
            {
                "steps": steps,
                "capacitors": capacitor_count(steps),
                "total_capacitance": float(np.sum(weights[1:])),
                "first_image_order": first_image_order(steps),
                "first_image_dbc": image_level_dbc(steps),
            }
        )
    return rows
