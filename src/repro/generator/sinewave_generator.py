"""The complete SC sinewave generator (paper Fig. 2).

Combines the time-variant capacitor array, the 16-step digital control,
and the Table I biquad into the stimulus source of the network analyzer.
The generator renders its output either on the generator clock (``fgen``,
one sample per SC update) or as the *held* waveform on the master clock
(``feva = 6 fgen``) — the latter is what the DUT and evaluator physically
see, since an SC output is a sample-and-hold staircase.
"""

from __future__ import annotations

import numpy as np

from ..clocking.master import ClockTree, GENERATOR_STEPS
from ..errors import ConfigError
from ..sc.biquad import BiquadCapacitors, SCBiquad
from ..sc.mismatch import MismatchModel
from ..sc.opamp import OpAmpModel
from ..signals.waveform import Waveform
from .capacitor_array import TimeVariantCapacitorArray
from .control import GeneratorControl
from .design import PAPER_CAPACITORS, amplitude_gain, va_for_amplitude

#: Default number of output periods discarded for biquad settling.  The
#: dominant pole radius is ~0.85 per generator cycle, so one output period
#: (16 cycles) shrinks transients by ~13x; 12 periods is conservative.
DEFAULT_SETTLE_PERIODS = 12


class SinewaveGenerator:
    """Behavioural model of the on-chip sinewave generator.

    Parameters
    ----------
    clock:
        The analyzer clock tree (sets ``fgen`` and ``feva``).
    caps:
        Nominal biquad capacitors (Table I by default).
    opamp1, opamp2:
        Amplifier models for the two integrators (ideal by default; the
        paper's chip uses the same folded-cascode design for both).
    mismatch:
        Capacitor mismatch model applied to *both* the input array and the
        biquad capacitors (one simulated die).  ``None`` = nominal.
    rng:
        Noise generator for amplifier/kT-C noise; ``None`` disables noise.
    unit_capacitance:
        Physical unit capacitor size in farads for kT/C noise scaling.
    va_plus, va_minus:
        Initial amplitude-programming references.
    """

    def __init__(
        self,
        clock: ClockTree,
        caps: BiquadCapacitors = PAPER_CAPACITORS,
        opamp1: OpAmpModel | None = None,
        opamp2: OpAmpModel | None = None,
        mismatch: MismatchModel | None = None,
        rng: np.random.Generator | None = None,
        unit_capacitance: float | None = None,
        va_plus: float = 0.0,
        va_minus: float = 0.0,
        switch_nonlinearity: tuple[float, float] | None = None,
    ) -> None:
        self.clock = clock
        self.nominal_caps = caps
        effective_caps = caps.mismatched(mismatch) if mismatch is not None else caps
        self.array = TimeVariantCapacitorArray(mismatch, switch_nonlinearity)
        self.control = GeneratorControl(self.array, va_plus, va_minus)
        self.biquad = SCBiquad(
            effective_caps,
            opamp1=opamp1,
            opamp2=opamp2,
            rng=rng,
            unit_capacitance=unit_capacitance,
        )

    # ------------------------------------------------------------------
    # Amplitude programming
    # ------------------------------------------------------------------
    def set_amplitude_references(self, va_plus: float, va_minus: float) -> None:
        """Program ``VA+``/``VA-`` directly (paper Fig. 2a interface)."""
        self.control.set_amplitude_references(va_plus, va_minus)

    def set_amplitude(self, target_amplitude: float) -> None:
        """Program the references for a target output tone amplitude.

        Uses the nominal design gain; a mismatched die lands within the
        mismatch tolerance of the target, as in silicon.
        """
        va = va_for_amplitude(target_amplitude, self.nominal_caps)
        self.control.set_amplitude_references(va / 2.0, -va / 2.0)

    @property
    def expected_amplitude(self) -> float:
        """Nominal output amplitude for the programmed references."""
        return amplitude_gain(self.nominal_caps) * abs(self.control.va_differential)

    @property
    def fwave(self) -> float:
        """The synthesized tone frequency."""
        return self.clock.fwave

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def render_steps(self, n_steps: int, reset: bool = True) -> Waveform:
        """Raw output sequence on the generator clock (includes transient)."""
        if n_steps < 0:
            raise ConfigError(f"n_steps must be >= 0, got {n_steps}")
        if reset:
            self.biquad.reset()
        charges = self.control.charge_sequence(n_steps)
        samples = self.biquad.run(charges)
        return Waveform(samples, self.clock.fgen)

    def render(
        self,
        n_periods: int,
        settle_periods: int = DEFAULT_SETTLE_PERIODS,
        reset: bool = True,
    ) -> Waveform:
        """Steady-state output on the generator clock.

        Renders ``settle_periods + n_periods`` output periods and discards
        the settling head.  Discarding whole periods keeps the returned
        waveform phase-aligned with the control pattern: sample 0 always
        corresponds to pattern step 0, which is what makes the analyzer's
        one-off phase calibration meaningful.
        """
        if n_periods < 1:
            raise ConfigError(f"n_periods must be >= 1, got {n_periods}")
        if settle_periods < 0:
            raise ConfigError(f"settle_periods must be >= 0, got {settle_periods}")
        total_steps = (settle_periods + n_periods) * GENERATOR_STEPS
        full = self.render_steps(total_steps, reset=reset)
        return full.slice_samples(settle_periods * GENERATOR_STEPS)

    def render_held(
        self,
        n_periods: int,
        settle_periods: int = DEFAULT_SETTLE_PERIODS,
        reset: bool = True,
    ) -> Waveform:
        """Steady-state *held* output on the master clock (``feva``).

        This is the continuous-time staircase the DUT and the evaluator
        see: every generator sample is held for the 6 master-clock
        periods of the 1:6 divider.
        """
        gen_wave = self.render(n_periods, settle_periods, reset)
        return gen_wave.hold_upsample(self.clock.samples_per_gen_step)
