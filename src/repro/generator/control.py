"""Digital control wrapper of the generator.

The paper stresses that the generator needs only "a very simple digital
control circuitry": the 16-state sequencer driving ``c1..c4``/``phi_in``
and an amplitude reference pair ``VA+ / VA-``.  :class:`GeneratorControl`
is that control block: it binds the switching schedule to a programmed
reference and emits the charge sequence the analog core integrates.
"""

from __future__ import annotations

from ..clocking.sequencer import GeneratorSequence
from ..errors import ConfigError
from .capacitor_array import TimeVariantCapacitorArray


class GeneratorControl:
    """Programmable control front-end of the sinewave generator.

    Parameters
    ----------
    array:
        The time-variant capacitor array being sequenced.
    va_plus, va_minus:
        The amplitude-programming DC references (volts).  The effective
        input level is the differential ``va_plus - va_minus``, exactly as
        in the paper's Fig. 2a.
    """

    def __init__(
        self,
        array: TimeVariantCapacitorArray,
        va_plus: float = 0.0,
        va_minus: float = 0.0,
    ) -> None:
        self.array = array
        self.sequence = GeneratorSequence()
        self.set_amplitude_references(va_plus, va_minus)

    def set_amplitude_references(self, va_plus: float, va_minus: float) -> None:
        """Program the amplitude DAC references."""
        self.va_plus = float(va_plus)
        self.va_minus = float(va_minus)

    @property
    def va_differential(self) -> float:
        """The effective input DC level ``VA+ - VA-``."""
        return self.va_plus - self.va_minus

    def charge_sequence(self, n_steps: int):
        """Input charge per generator cycle for the programmed references."""
        if n_steps < 0:
            raise ConfigError(f"n_steps must be >= 0, got {n_steps}")
        return self.array.charge_sequence(n_steps, self.va_differential)

    def control_lines(self, n_steps: int):
        """The raw digital control vectors ``(c1..c4 one-hot, phi_in)``.

        Provided for timing-diagram style inspection and for driving the
        ATE model; the analog simulation consumes
        :meth:`charge_sequence` instead.
        """
        import numpy as np

        idx = np.arange(n_steps)
        return self.sequence.one_hot(n_steps), self.sequence.polarity(idx)
