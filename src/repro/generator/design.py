"""Generator design constants derived from the paper's Table I.

Table I (normalized capacitor values): A = 5.194, B = 12.749, C = 1,
D = 2.574, F = 1.014, ``Cin = CI(t)``.  This module turns those raw
values into the quantities a designer (and our benches) actually care
about:

* the biquad's resonance ``f0`` and quality factor ``Q`` relative to the
  generator clock;
* the passband response at the synthesized tone frequency
  ``fwave = fgen/16``;
* the amplitude-programming gain from the DC reference ``VA+ - VA-`` to
  the output tone amplitude.

The last item is *analytic*: the staircase's fundamental component has
amplitude exactly ``2 (VA+ - VA-)`` (eq. (2)'s capacitor weights sample a
sine of amplitude 2), so the output amplitude is ``2 |H(fwave)|`` per
volt of reference.  The fabricated chip realizes an overall gain of 2
(Fig. 8a: 300 mV for a 150 mV differential reference); our assumed switch
phasing realizes ``2 |H| ~= 0.44``.  The ratio is a fixed scale factor —
amplitude programming uses :func:`va_for_amplitude`, and the linearity of
the control (the actual claim of Fig. 8a) is phasing-independent.
"""

from __future__ import annotations

import cmath
import math
from functools import lru_cache

from ..clocking.master import GENERATOR_STEPS
from ..errors import ConfigError
from ..sc.analysis import frequency_response, is_stable, resonance
from ..sc.biquad import BiquadCapacitors, SCBiquad

#: The paper's Table I capacitor values (normalized to C = 1).
PAPER_CAPACITORS = BiquadCapacitors(a=5.194, b=12.749, c=1.0, d=2.574, f=1.014)

#: Fundamental amplitude of the quantized-sine charge sequence per volt of
#: differential reference (paper eq. (2): weights are ``2 sin(k pi/8)``).
STAIRCASE_FUNDAMENTAL_GAIN = 2.0

#: Weak switch charge-domain nonlinearity ``(a2, a3)`` calibrated so the
#: full generator model (with 0.1 % mismatch, 70 dB amplifiers and
#: sampled noise) reproduces the fabricated prototype's measured purity:
#: SFDR ~= 70 dB, THD ~= 70 dB at 1 Vpp (paper Fig. 8b: 70 / 67 dB).
#: Physically: signal-dependent charge injection and voltage-dependent
#: switch resistance, which the paper's 0.35 um transmission gates
#: exhibit and the purely capacitive model omits.
PROTOTYPE_SWITCH_NONLINEARITY = (1e-3, 5e-4)


@lru_cache(maxsize=16)
def _biquad_response_at_fwave(caps: BiquadCapacitors) -> complex:
    m, b, c = SCBiquad(caps).state_matrices()
    # fwave sits at fgen/16; express it on a unit clock.
    return complex(
        frequency_response(m, b, c, [1.0 / GENERATOR_STEPS], fclk=1.0)[0]
    )


def amplitude_gain(caps: BiquadCapacitors = PAPER_CAPACITORS) -> float:
    """Output tone amplitude per volt of ``VA+ - VA-`` (ideal biquad)."""
    return STAIRCASE_FUNDAMENTAL_GAIN * abs(_biquad_response_at_fwave(caps))


def output_phase_offset(caps: BiquadCapacitors = PAPER_CAPACITORS) -> float:
    """Phase of the output tone relative to the control pattern (radians).

    The staircase fundamental is ``sin(2 pi n/16)`` aligned with pattern
    step 0; the biquad adds ``arg H(fwave)``.  This constant is what the
    analyzer's one-off calibration measures.
    """
    return cmath.phase(_biquad_response_at_fwave(caps))


def va_for_amplitude(
    target_amplitude: float, caps: BiquadCapacitors = PAPER_CAPACITORS
) -> float:
    """Differential reference voltage that produces a target amplitude."""
    if target_amplitude < 0:
        raise ConfigError(f"target amplitude must be >= 0, got {target_amplitude!r}")
    gain = amplitude_gain(caps)
    return target_amplitude / gain


def design_summary(
    caps: BiquadCapacitors = PAPER_CAPACITORS, fgen: float = 1.0
) -> dict:
    """All Table-I-derived design figures in one dictionary.

    Keys: ``f0`` (resonance, Hz for the given ``fgen``), ``q``,
    ``f0_over_fgen``, ``f0_over_fwave``, ``gain_at_fwave`` (magnitude of
    the biquad response at the tone), ``amplitude_gain`` (tone amplitude
    per reference volt), ``phase_at_fwave`` (radians), ``stable``.
    """
    if not fgen > 0:
        raise ConfigError(f"fgen must be positive, got {fgen!r}")
    biquad = SCBiquad(caps)
    m, _b, _c = biquad.state_matrices()
    f0_norm, q = resonance(m, fclk=1.0)
    h = _biquad_response_at_fwave(caps)
    fwave_norm = 1.0 / GENERATOR_STEPS
    return {
        "f0": f0_norm * fgen,
        "q": q,
        "f0_over_fgen": f0_norm,
        "f0_over_fwave": f0_norm / fwave_norm,
        "gain_at_fwave": abs(h),
        "phase_at_fwave": cmath.phase(h),
        "amplitude_gain": STAIRCASE_FUNDAMENTAL_GAIN * abs(h),
        "stable": is_stable(m),
    }


def image_attenuation_db(
    order: int, caps: BiquadCapacitors = PAPER_CAPACITORS
) -> float:
    """Biquad attenuation (dB > 0) at harmonic ``order`` of the tone,
    relative to its response at the tone itself.

    Used to predict the level of the staircase sampling images
    (orders 15, 17, 31, 33, ...) at the generator output.
    """
    if order < 1:
        raise ConfigError(f"order must be >= 1, got {order}")
    biquad = SCBiquad(caps)
    m, b, c = biquad.state_matrices()
    fwave_norm = 1.0 / GENERATOR_STEPS
    h_tone = abs(frequency_response(m, b, c, [fwave_norm], fclk=1.0)[0])
    # Discrete-time response is periodic in the clock; evaluate the alias.
    f = order * fwave_norm
    h_img = abs(frequency_response(m, b, c, [f], fclk=1.0)[0])
    if h_img == 0:
        return math.inf
    return 20.0 * math.log10(h_tone / h_img)
