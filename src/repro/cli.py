"""Command-line interface: drive the analyzer from a shell.

Four subcommands mirror the library's main flows::

    python -m repro design
        Print the Table I design summary.

    python -m repro bode --cutoff 1000 --points 11 [--csv out.csv]
        Characterize an active-RC low-pass DUT (Fig. 10a/b style).

    python -m repro distortion --hd2 -57 --hd3 -64.5 [--csv out.csv]
        The Fig. 10c harmonic-distortion experiment.

    python -m repro dynamic-range --m-periods 200
        Evaluator + system dynamic range (the 70 dB claim).

The CLI builds everything from the public API — it doubles as an
executable usage example.
"""

from __future__ import annotations

import argparse
import sys

from .core.analyzer import NetworkAnalyzer
from .core.bode import BodeResult
from .core.config import AnalyzerConfig
from .core.distortion import measure_distortion
from .core.dynamic_range import evaluator_dynamic_range, system_dynamic_range
from .core.sweep import FrequencySweepPlan
from .dut.active_rc import ActiveRCLowpass
from .dut.base import PassthroughDUT
from .dut.nonlinear import WienerDUT, polynomial_for_distortion
from .generator.design import design_summary
from .reporting.export import bode_to_csv, distortion_to_csv, write_csv
from .reporting.series import format_series
from .reporting.tables import ascii_table
from .sc.opamp import OpAmpModel


def _cmd_design(_args) -> int:
    summary = design_summary()
    rows = [[key, value] for key, value in summary.items()]
    print(ascii_table(["design figure", "value"], rows,
                      title="Table I derived design summary"))
    return 0


def _cmd_bode(args) -> int:
    dut = ActiveRCLowpass.from_specs(cutoff=args.cutoff, q=args.q)
    analyzer = NetworkAnalyzer(dut, AnalyzerConfig.ideal(m_periods=args.m_periods))
    analyzer.calibrate(fwave=args.cutoff)
    plan = FrequencySweepPlan(args.f_start, args.f_stop, args.points)
    bode = BodeResult(tuple(analyzer.bode(plan.frequencies())))
    lo, hi = bode.gain_db_bounds()
    print(
        format_series(
            {
                "f (Hz)": bode.frequencies(),
                "gain dB": bode.gain_db(),
                "lo": lo,
                "hi": hi,
                "phase deg": bode.phase_deg(),
            },
            digits=4,
        )
    )
    if args.csv:
        write_csv(args.csv, bode_to_csv(bode))
        print(f"wrote {args.csv}")
    return 0


def _cmd_distortion(args) -> int:
    linear = ActiveRCLowpass.from_specs(cutoff=args.cutoff)
    level = args.amplitude * linear.gain_at(args.fwave)
    dut = WienerDUT(linear, polynomial_for_distortion(level, args.hd2, args.hd3))
    analyzer = NetworkAnalyzer(
        dut,
        AnalyzerConfig.ideal(
            stimulus_amplitude=args.amplitude,
            evaluator_opamp=OpAmpModel(noise_rms=50e-6),
            noise_seed=1,
        ),
    )
    report = measure_distortion(analyzer, args.fwave, m_periods=args.m_periods)
    rows = [
        [f"HD{r.harmonic}", r.level_dbc.value, r.reference_dbc, r.agreement_db]
        for r in report.rows
    ]
    print(
        ascii_table(
            ["harmonic", "analyzer (dBc)", "scope (dBc)", "|delta| (dB)"],
            rows,
            title="Harmonic distortion measurement",
        )
    )
    if args.csv:
        write_csv(args.csv, distortion_to_csv(report))
        print(f"wrote {args.csv}")
    return 0


def _cmd_dynamic_range(args) -> int:
    evaluator = evaluator_dynamic_range(
        m_periods=args.m_periods if args.m_periods % 2 == 0 else args.m_periods + 1
    )
    analyzer = NetworkAnalyzer(
        PassthroughDUT(), AnalyzerConfig.ideal(m_periods=200)
    )
    system = system_dynamic_range(analyzer, args.fwave)
    rows = [
        ["evaluator weak-tone range (dB)", evaluator.dynamic_range_db],
        [f"system residual range @ {args.fwave:g} Hz (dB)", system],
    ]
    print(ascii_table(["figure", "value"], rows, title="Dynamic range"))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DATE 2008 analog-BIST network analyzer (reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("design", help="print the Table I design summary")

    bode = sub.add_parser("bode", help="Bode characterization of an RC low-pass")
    bode.add_argument("--cutoff", type=float, default=1000.0)
    bode.add_argument("--q", type=float, default=0.7071)
    bode.add_argument("--f-start", type=float, default=100.0)
    bode.add_argument("--f-stop", type=float, default=20_000.0)
    bode.add_argument("--points", type=int, default=11)
    bode.add_argument("--m-periods", type=int, default=100)
    bode.add_argument("--csv", type=str, default=None)

    distortion = sub.add_parser("distortion", help="HD2/HD3 measurement")
    distortion.add_argument("--cutoff", type=float, default=1000.0)
    distortion.add_argument("--fwave", type=float, default=1600.0)
    distortion.add_argument("--amplitude", type=float, default=0.4)
    distortion.add_argument("--hd2", type=float, default=-57.0)
    distortion.add_argument("--hd3", type=float, default=-64.5)
    distortion.add_argument("--m-periods", type=int, default=400)
    distortion.add_argument("--csv", type=str, default=None)

    dynamic = sub.add_parser("dynamic-range", help="dynamic range figures")
    dynamic.add_argument("--m-periods", type=int, default=200)
    dynamic.add_argument("--fwave", type=float, default=1000.0)

    return parser


_COMMANDS = {
    "design": _cmd_design,
    "bode": _cmd_bode,
    "distortion": _cmd_distortion,
    "dynamic-range": _cmd_dynamic_range,
}


def main(argv=None) -> int:
    """Entry point (``python -m repro ...``)."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
