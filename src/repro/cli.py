"""Command-line interface: drive the analyzer from a shell.

Thirteen subcommands mirror the library's main flows::

    python -m repro design
        Print the Table I design summary.

    python -m repro bode --cutoff 1000 --points 11 [--csv out.csv]
        Characterize an active-RC low-pass DUT (Fig. 10a/b style).

    python -m repro sweep --points 25 --workers 4 [--csv out.csv]
        The same characterization with engine statistics printed:
        parallel sweep points, cached calibration, identical numbers at
        any worker count.

    python -m repro yield --devices 50 --sigma 0.03 --workers 4
        Monte-Carlo yield analysis of a production lot through a
        go/no-go BIST program.

    python -m repro coverage --catastrophic --workers 4
        Fault coverage of a go/no-go program over a fault catalog,
        batch-executed as an engine fault campaign.

    python -m repro prbist --lfsr-width 10 --patterns 6 --catastrophic
        Pseudorandom BIST: LFSR-placed stimulus tones, each device's
        quantized response folded into an n-bit MISR signature and
        compared exactly against golden (coverage, aliasing, escapes).

    python -m repro diagnose --inject r2+50% --probes 3 --workers 4
        Build a fault dictionary, select the most discriminating probe
        frequencies, and diagnose an injected fault from its measured
        signature (ranked candidates + ambiguity group).

    python -m repro distortion --hd2 -57 --hd3 -64.5 --workers 2
        The Fig. 10c harmonic-distortion experiment, one engine job per
        stimulus frequency (pass several --fwave values).

    python -m repro dynamic-range --m-periods 200 --workers 4
        Evaluator + system dynamic range (the 70 dB claim); the
        evaluator's weak-tone probes run as engine jobs.

    python -m repro scenarios run examples/scenarios/production_test.json
    python -m repro scenarios record spec.json --out baseline.json
    python -m repro scenarios check baseline.json [--update]
        Declarative scenarios: whole test programs as JSON specs,
        compiled onto the engine, with golden-baseline record/check
        regression testing (see :mod:`repro.scenarios`).

    python -m repro lint [src tests benchmarks] [--list-rules]
        Repo-aware static analysis: the REP001–REP005 contract rules
        (determinism, execution seam, error discipline, canonical
        serialization, lock discipline) with precise file:line:col
        findings, inline justified suppressions and a committed
        grandfather baseline — see :mod:`repro.analysis`.

    python -m repro serve --port 7351 --max-running 4
        Long-running analyzer-as-a-service: accept scenario submissions
        over a newline-delimited canonical-JSON socket protocol, with a
        priority job queue, fault-tolerant lot sharding and per-step
        result streaming (``--status`` queries a running server) — see
        :mod:`repro.service`.

    python -m repro trace summarize run.jsonl
        Per-span wall-time/count summary of a recorded trace.  Every
        measurement subcommand accepts ``--trace PATH.jsonl`` and writes
        the invocation's span tree (session calls, scenario steps,
        campaigns, engine batches, calibrations) as canonical JSON lines
        — see :mod:`repro.obs`.

Execution is decided in exactly one place: every measurement subcommand
shares the same ``--workers`` / ``--backend`` / ``--policy policy.json``
arguments (one argparse parent parser), mapped onto a validated
:class:`~repro.api.policy.ExecutionPolicy` and executed through one
:class:`~repro.api.session.Session` per invocation — shared calibration
cache, one batch runner, identical numbers on either backend at any
worker count.  A policy file (written by
``ExecutionPolicy(...).to_json()``) pins the execution strategy next to
the scenario specs it runs; explicit flags override its fields.

The CLI builds everything from the public API — it doubles as an
executable usage example.  Every subcommand documents its own usage in
``--help`` (``python -m repro <command> --help``); README.md walks
through all thirteen.
"""

from __future__ import annotations

import argparse
import sys
import time

from .api import ExecutionPolicy, Session
from .bist.limits import SpecMask
from .bist.montecarlo import default_yield_config
from .bist.program import BISTProgram
from .core.analyzer import NetworkAnalyzer
from .core.config import AnalyzerConfig
from .core.dynamic_range import system_dynamic_range
from .core.sweep import FrequencySweepPlan
from .dut.active_rc import ActiveRCLowpass, design_mfb_lowpass
from .dut.base import PassthroughDUT
from .dut.faults import fault_catalog, full_catalog
from .dut.nonlinear import WienerDUT, polynomial_for_distortion
from .errors import ConfigError
from .generator.design import design_summary
from .reporting.export import (
    bode_to_csv,
    distortion_sweep_to_csv,
    write_csv,
    write_json,
)
from .reporting.series import format_series
from .reporting.tables import ascii_table
from .sc.opamp import OpAmpModel


def _wall_clock() -> float:
    """Monotonic seconds for the CLI's ``elapsed`` footer lines.

    The one sanctioned clock read in this module: elapsed times are
    operator-facing display only and never enter a result or a baseline
    (structured timing belongs to the ``repro.obs`` timing channel).
    """
    return time.perf_counter()  # repro: allow[REP001]: wall-clock display only; never enters results


def _positive_int(text: str) -> int:
    """Argparse type for counts that must be >= 1 (e.g. ``--workers``).

    Rejecting zero/negative values at the parser gives every subcommand
    the same clear usage error instead of a deep ``ConfigError``
    traceback from whichever layer first validates.
    """
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {text!r}")
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


# ----------------------------------------------------------------------
# Execution policy plumbing (shared by every measurement subcommand)
# ----------------------------------------------------------------------

def _execution_parent() -> argparse.ArgumentParser:
    """The one definition of the execution arguments.

    Every subcommand that runs measurements inherits exactly these
    flags, so ``--workers``/``--backend``/``--policy`` parse and
    validate identically everywhere.  Defaults are ``None`` (not the
    policy defaults) so explicit flags can be told apart from absent
    ones: flags override a ``--policy`` file, which overrides the
    built-in :class:`~repro.api.policy.ExecutionPolicy` defaults (or,
    for scenarios, the spec's own defaults).
    """
    parent = argparse.ArgumentParser(add_help=False)
    group = parent.add_argument_group("execution policy")
    group.add_argument(
        "--workers", type=_positive_int, default=None,
        help="worker processes (results identical at any count)")
    group.add_argument(
        "--backend", choices=("reference", "vectorized"), default=None,
        help="execution backend: 'reference' runs one job per "
             "measurement (parallelizable with --workers); 'vectorized' "
             "batches the whole population as in-process array "
             "operations — the single-core throughput path, "
             "result-equivalent to the reference backend")
    group.add_argument(
        "--chunk-size", type=_positive_int, default=None, metavar="N",
        help="device-axis shard size for population batches: lots "
             "stream through the engine N jobs at a time, bounding "
             "peak memory with bit-identical results (per-job seeds "
             "are indexed by absolute lot position, not chunk)")
    group.add_argument(
        "--policy", type=str, default=None, metavar="POLICY_JSON",
        help="execution-policy file (ExecutionPolicy(...).to_json()); "
             "explicit --workers/--backend flags override its fields. "
             "The scenario subcommands take backend/workers from the "
             "file but always keep the spec's own seed (a recorded "
             "baseline replays only under its own seed)")
    group.add_argument(
        "--trace", type=str, default=None, metavar="TRACE_JSONL",
        help="record the invocation's span tree (session calls, "
             "campaigns, engine batches, calibrations) to this JSONL "
             "file; inspect it with 'python -m repro trace summarize'")
    return parent


def _policy_from_args(args) -> ExecutionPolicy:
    """The validated execution policy one invocation runs under."""
    if getattr(args, "policy", None):
        policy = ExecutionPolicy.from_json(
            _read_text(args.policy, what="execution policy")
        )
    else:
        policy = ExecutionPolicy()
    overrides = {}
    if getattr(args, "workers", None) is not None:
        overrides["n_workers"] = args.workers
    if getattr(args, "backend", None) is not None:
        overrides["backend"] = args.backend
    if getattr(args, "seed", None) is not None:
        overrides["seed"] = args.seed
    if getattr(args, "chunk_size", None) is not None:
        overrides["chunk_size"] = args.chunk_size
    return policy.replace(**overrides) if overrides else policy


def _session_from_args(args, dut=None, config=None) -> Session:
    """One session per invocation: the single execution decision point."""
    return Session(
        dut=dut,
        config=config,
        policy=_policy_from_args(args),
        obs=getattr(args, "_obs", None),
    )


def _cmd_design(_args) -> int:
    """Print the derived Table I design summary.

    Usage example::

        python -m repro design
    """
    summary = design_summary()
    rows = [[key, value] for key, value in summary.items()]
    print(ascii_table(["design figure", "value"], rows,
                      title="Table I derived design summary"))
    return 0


def _cmd_bode(args) -> int:
    """Bode characterization of an active-RC low-pass DUT.

    Calibrates once at the cutoff (served from the session's cache),
    then measures gain and phase with guaranteed error bands at each
    sweep point (paper Fig. 10a/b).

    Usage example::

        python -m repro bode --cutoff 1000 --points 11 --csv bode.csv
    """
    dut = ActiveRCLowpass.from_specs(cutoff=args.cutoff, q=args.q)
    config = AnalyzerConfig.ideal(m_periods=args.m_periods)
    plan = FrequencySweepPlan(args.f_start, args.f_stop, args.points)
    with _session_from_args(args, dut=dut, config=config) as session:
        bode = session.bode(
            plan.frequencies(), calibration_fwave=args.cutoff
        ).raw
    _print_bode(bode)
    if args.csv:
        write_csv(args.csv, bode_to_csv(bode))
        print(f"wrote {args.csv}")
    return 0


def _cmd_sweep(args) -> int:
    """Engine-batched Bode sweep: the production-throughput path.

    Identical measurement to ``bode`` but with the engine accounting
    printed: the calibration is served from the session cache and the
    sweep points run as parallel jobs.  Deterministic per-job seeding
    makes the numbers bit-identical at any ``--workers`` count.

    Usage example::

        python -m repro sweep --points 25 --workers 4 --repeat 2
    """
    dut = ActiveRCLowpass.from_specs(cutoff=args.cutoff, q=args.q)
    config = AnalyzerConfig.ideal(m_periods=args.m_periods)
    plan = FrequencySweepPlan(args.f_start, args.f_stop, args.points)
    with _session_from_args(args, dut=dut, config=config) as session:
        started = _wall_clock()
        for _ in range(args.repeat):
            result = session.bode(
                plan.frequencies(), calibration_fwave=args.cutoff
            )
        elapsed = _wall_clock() - started
        bode = result.raw
        _print_bode(bode)
        stats = session.runner.last_stats
        print(
            f"{args.repeat} sweep(s) x {stats.n_jobs} points on "
            f"{stats.n_workers} worker(s) ({stats.backend} backend) in "
            f"{elapsed:.2f} s; calibration cache "
            f"{session.cache.hits} hit(s) / {session.cache.misses} miss(es)"
        )
    if args.csv:
        write_csv(args.csv, bode_to_csv(bode))
        print(f"wrote {args.csv}")
    return 0


def _print_bode(bode) -> None:
    lo, hi = bode.gain_db_bounds()
    print(
        format_series(
            {
                "f (Hz)": bode.frequencies(),
                "gain dB": bode.gain_db(),
                "lo": lo,
                "hi": hi,
                "phase deg": bode.phase_deg(),
            },
            digits=4,
        )
    )


def _cmd_yield(args) -> int:
    """Monte-Carlo yield analysis of a lot through a BIST program.

    Draws ``--devices`` devices with Gaussian component spread around a
    nominal design, runs each through a go/no-go gain-mask program, and
    reports test yield against true (analytic) yield — escapes, overkill
    and ambiguous outcomes included.  Trials are engine jobs:
    ``--workers N`` parallelizes the lot with bit-identical results.

    Usage example::

        python -m repro yield --devices 50 --sigma 0.03 --workers 4
    """
    nominal = design_mfb_lowpass(args.cutoff)
    golden = ActiveRCLowpass(nominal)
    frequencies = [args.cutoff * r for r in (0.3, 1.0, 2.0)]
    mask = SpecMask.from_golden(golden, frequencies, tolerance_db=args.tolerance_db)
    program = BISTProgram(mask, frequencies, m_periods=args.m_periods)
    config = default_yield_config(program)
    with _session_from_args(args, config=config) as session:
        started = _wall_clock()
        result = session.yield_lot(
            nominal,
            mask,
            program,
            n_devices=args.devices,
            component_sigma=args.sigma,
            ambiguous_passes=args.ambiguous_passes,
        )
        elapsed = _wall_clock() - started
        report = result.raw
        rows = [
            ["devices", report.n_devices],
            ["test yield", f"{report.test_yield:.3f}"],
            ["true yield", f"{report.true_yield:.3f}"],
            ["escape rate", f"{report.escape_rate:.3f}"],
            ["overkill rate", f"{report.overkill_rate:.3f}"],
            ["ambiguous rate", f"{report.ambiguous_rate:.3f}"],
            ["wall time (s)", f"{elapsed:.2f}"],
            ["workers", session.policy.n_workers],
            ["backend", result.stats.backend],
        ]
    print(ascii_table(["figure", "value"], rows, title="Monte-Carlo yield"))
    return 0


def _cmd_distortion(args) -> int:
    """Measure HD2/HD3 of a mildly nonlinear DUT (paper Fig. 10c).

    Builds a Wiener DUT with programmable distortion, measures its
    harmonics with the analyzer, and compares against the oscilloscope
    stand-in.  Each requested stimulus frequency is an independent
    engine job, so several ``--fwave`` values plus ``--workers N``
    parallelize the experiment with bit-identical numbers.

    Usage example::

        python -m repro distortion --hd2 -57 --hd3 -64.5 --csv hd.csv
        python -m repro distortion --fwave 800 1600 3200 --workers 3
    """
    linear = ActiveRCLowpass.from_specs(cutoff=args.cutoff)
    # The polynomial is a property of the device: tune it once, at the
    # first requested operating point.
    level = args.amplitude * linear.gain_at(args.fwave[0])
    dut = WienerDUT(linear, polynomial_for_distortion(level, args.hd2, args.hd3))
    config = AnalyzerConfig.ideal(
        stimulus_amplitude=args.amplitude,
        evaluator_opamp=OpAmpModel(noise_rms=50e-6),
        noise_seed=1,
    )
    with _session_from_args(args, dut=dut, config=config) as session:
        started = _wall_clock()
        reports = session.distortion(args.fwave, m_periods=args.m_periods).raw
        elapsed = _wall_clock() - started
        n_workers = session.runner.last_stats.n_workers
    rows = [
        [f"{report.fwave:g}", f"HD{r.harmonic}", r.level_dbc.value,
         r.reference_dbc, r.agreement_db]
        for report in reports
        for r in report.rows
    ]
    print(
        ascii_table(
            ["fwave (Hz)", "harmonic", "analyzer (dBc)", "scope (dBc)",
             "|delta| (dB)"],
            rows,
            title="Harmonic distortion measurement",
        )
    )
    print(
        f"{len(reports)} experiment(s) on {n_workers} "
        f"worker(s) in {elapsed:.2f} s"
    )
    if args.csv:
        write_csv(args.csv, distortion_sweep_to_csv(reports))
        print(f"wrote {args.csv}")
    return 0


def _cmd_dynamic_range(args) -> int:
    """Report the evaluator and whole-system dynamic range figures.

    Reproduces the abstract's headline claim (over 70 dB of dynamic
    range) from the weak-tone resolution of the evaluator and the
    residual floor of the full system.  The evaluator's weak-tone
    probes are independent engine jobs: ``--workers N`` runs them in
    parallel with identical numbers.

    Usage example::

        python -m repro dynamic-range --m-periods 200 --workers 4
    """
    with _session_from_args(args) as session:
        started = _wall_clock()
        evaluator = session.dynamic_range(
            m_periods=(
                args.m_periods if args.m_periods % 2 == 0 else args.m_periods + 1
            ),
        ).raw
        analyzer = NetworkAnalyzer(
            PassthroughDUT(), AnalyzerConfig.ideal(m_periods=200)
        )
        system = system_dynamic_range(analyzer, args.fwave)
        elapsed = _wall_clock() - started
        rows = [
            ["evaluator weak-tone range (dB)", evaluator.dynamic_range_db],
            [f"system residual range @ {args.fwave:g} Hz (dB)", system],
            ["wall time (s)", f"{elapsed:.2f}"],
            ["workers", session.policy.n_workers],
        ]
    print(ascii_table(["figure", "value"], rows, title="Dynamic range"))
    return 0


def _build_catalog(args):
    """The fault catalog implied by --deviations / --catastrophic."""
    deviations = sorted(
        {s * d for d in args.deviations for s in (-1.0, 1.0)}
    )
    if args.catastrophic:
        return full_catalog(deviations)
    return fault_catalog(deviations)


def _cmd_coverage(args) -> int:
    """Fault coverage of a go/no-go program over a fault catalog.

    Builds the demonstrator DUT, derives a gain mask from it, then runs
    the whole catalog (parametric deviations, plus shorts/opens with
    ``--catastrophic``) as an engine fault campaign — one cached
    calibration for the entire catalog, ``--workers N`` parallel, with
    bit-identical results at any worker count.

    Usage example::

        python -m repro coverage --deviations 0.2 0.5 --catastrophic --workers 4
    """
    golden = ActiveRCLowpass.from_specs(cutoff=args.cutoff)
    frequencies = [args.cutoff * r for r in (0.3, 1.0, 2.0)]
    mask = SpecMask.from_golden(golden, frequencies, tolerance_db=args.tolerance_db)
    program = BISTProgram(mask, frequencies, m_periods=args.m_periods)
    catalog = _build_catalog(args)
    with _session_from_args(args, dut=golden) as session:
        started = _wall_clock()
        result = session.fault_coverage(catalog, program)
        elapsed = _wall_clock() - started
        report = result.raw
        summary_tail = [
            ["wall time (s)", f"{elapsed:.2f}"],
            ["workers", session.policy.n_workers],
            ["backend", result.stats.backend],
        ]
    rows = [[t.fault.label, t.verdict] for t in report.trials]
    print(ascii_table(["fault", "verdict"], rows, title="Fault trials"))
    summary = [
        ["faults", len(report.trials)],
        ["coverage (fail)", f"{report.coverage:.3f}"],
        ["flagged (fail+ambiguous)", f"{report.flagged:.3f}"],
        ["escapes", len(report.escapes)],
        ["good device verdict", report.good_verdict],
    ] + summary_tail
    print(ascii_table(["figure", "value"], summary, title="Fault coverage"))
    return 0


def _cmd_prbist(args) -> int:
    """Pseudorandom BIST over a fault catalog with MISR compaction.

    An LFSR on a tabulated primitive polynomial draws ``--patterns``
    pseudorandom words, each selecting an in-band stimulus tone; every
    catalog device's quantized response folds into an n-bit MISR
    signature compared exactly against golden.  One cached calibration
    serves the whole campaign; signatures are bit-identical on either
    backend at any worker count.

    Usage example::

        python -m repro prbist --lfsr-width 10 --patterns 6 --catastrophic
        python -m repro prbist --form galois --misr-width 8 --workers 4
    """
    from .prbist import LFSRConfig, MISRConfig, PseudorandomPlan, derive_lfsr_seed

    golden = ActiveRCLowpass.from_specs(cutoff=args.cutoff)
    catalog = _build_catalog(args)
    config = AnalyzerConfig.ideal(m_periods=args.m_periods)
    with _session_from_args(args, dut=golden, config=config) as session:
        plan = PseudorandomPlan(
            LFSRConfig(
                width=args.lfsr_width,
                form=args.form,
                seed=derive_lfsr_seed(session.policy.seed, args.lfsr_width),
            ),
            n_patterns=args.patterns,
        )
        started = _wall_clock()
        result = session.pseudorandom_coverage(
            catalog, plan, misr=MISRConfig(width=args.misr_width)
        )
        elapsed = _wall_clock() - started
        report = result.raw
        summary_tail = [
            ["wall time (s)", f"{elapsed:.2f}"],
            ["workers", session.policy.n_workers],
            ["backend", result.stats.backend],
        ]
    rows = [
        [t.label, f"0x{t.signature:0{(report.misr.width + 3) // 4}x}",
         "yes" if t.responding else "no",
         "aliased" if t.aliased else ("detected" if t.detected else "escape")]
        for t in report.trials
    ]
    print(ascii_table(["fault", "signature", "responding", "verdict"], rows,
                      title="Pseudorandom fault trials"))
    summary = [
        ["faults", len(report.trials)],
        ["patterns (tones)", len(report.frequencies)],
        ["LFSR", f"{plan.lfsr.width}-bit {plan.lfsr.form}"],
        ["golden signature",
         f"0x{report.golden_signature:0{(report.misr.width + 3) // 4}x}"],
        ["coverage", f"{report.coverage:.3f}"],
        ["response rate", f"{report.response_rate:.3f}"],
        ["aliasing rate", f"{report.aliasing_rate:.4f}"],
        ["aliasing bound (2^-n)", f"{report.aliasing_bound:.2e}"],
        ["escapes", len(report.escapes)],
    ] + summary_tail
    print(ascii_table(["figure", "value"], summary,
                      title="Pseudorandom BIST coverage"))
    return 0


def _cmd_diagnose(args) -> int:
    """Dictionary-based fault diagnosis of an injected fault.

    Measures a fault dictionary over a candidate sweep plan (an engine
    fault campaign), greedily selects the ``--probes`` most
    discriminating frequencies, then measures the device with the
    ``--inject`` fault at those probes and ranks the dictionary
    candidates against the signature.  Ambiguity is reported honestly:
    faults the intervals cannot separate come back as a group.

    Usage example::

        python -m repro diagnose --inject r2+50% --probes 3 --workers 4
        python -m repro diagnose --catastrophic --inject r2:open
    """
    golden = ActiveRCLowpass.from_specs(cutoff=args.cutoff)
    catalog = _build_catalog(args)
    plan = FrequencySweepPlan.around(
        args.cutoff, decades=args.decades, n_points=args.points
    )
    with _session_from_args(args, dut=golden) as session:
        started = _wall_clock()
        outcome = session.diagnose(
            catalog=catalog,
            frequencies=plan,
            inject=args.inject,
            n_probes=args.probes,
            top_n=args.top,
            m_periods=args.m_periods,
        ).raw
        elapsed = _wall_clock() - started
        n_workers = session.policy.n_workers
    result = outcome.diagnosis

    rows = [
        [c.label, f"{c.separation:.3f}", f"{c.estimate_distance:.3f}",
         "yes" if c.consistent else "no"]
        for c in result.candidates
    ]
    print(
        ascii_table(
            ["candidate", "interval gap", "estimate distance", "consistent"],
            rows,
            title=f"Diagnosis of injected fault {args.inject!r}",
        )
    )
    summary = [
        ["best candidate", result.best.label],
        ["ambiguity group", ", ".join(result.ambiguity_group)],
        ["conclusive", "yes" if result.conclusive else "no"],
        ["correct", "yes" if result.names(args.inject) else "no"],
        ["dictionary faults", len(outcome.dictionary)],
        ["probe frequencies", ", ".join(f"{f:.0f} Hz" for f in outcome.probes)],
        ["wall time (s)", f"{elapsed:.2f}"],
        ["workers", n_workers],
    ]
    print(ascii_table(["figure", "value"], summary, title="Diagnosis summary"))
    if args.dictionary:
        write_json(args.dictionary, outcome.production.to_json())
        print(f"wrote {args.dictionary}")
    return 0


def _cmd_scenarios(args) -> int:
    """Declarative scenarios: run, record and check whole test programs.

    A scenario is a JSON spec of typed steps (sweep, yield, coverage,
    distortion, diagnose, dynamic_range, pseudorandom, signature_check)
    compiled onto the batch engine
    (see :mod:`repro.scenarios`).  ``run`` executes a spec and prints a
    per-step summary; ``record`` writes the golden baseline artifact;
    ``check`` replays a baseline — on any ``--backend``, at any
    ``--workers`` count, or under a ``--policy`` file — and reports
    drift by step and field (``--update`` re-records after an
    intentional change).

    Usage examples::

        python -m repro scenarios run examples/scenarios/production_test.json
        python -m repro scenarios run spec.json --backend vectorized
        python -m repro scenarios record spec.json --out baseline.json
        python -m repro scenarios check baseline.json --workers 2
        python -m repro scenarios check baseline.json --update
    """
    from .scenarios import check, record, run_scenario
    from .scenarios.spec import ScenarioSpec

    backend, workers, chunk = _scenario_overrides(args)
    obs = getattr(args, "_obs", None)

    if args.scenarios_command == "check":
        report = check(
            args.baseline, backend=backend, n_workers=workers,
            update=args.update, obs=obs, chunk_size=chunk,
        )
        print(report.report())
        return 0 if (report.ok or report.updated) else 1

    spec = ScenarioSpec.from_json(_read_text(args.spec))
    started = _wall_clock()
    if args.scenarios_command == "record":
        out = args.out if args.out else f"{spec.name}.json"
        result = record(spec, out, backend=backend, n_workers=workers,
                        obs=obs, chunk_size=chunk)
        elapsed = _wall_clock() - started
        print(f"recorded baseline for scenario {spec.name!r} -> {out}")
    else:  # run
        result = run_scenario(spec, backend=backend, n_workers=workers,
                              obs=obs, chunk_size=chunk)
        elapsed = _wall_clock() - started
    rows = [[s.kind, s.name, s.headline()] for s in result.steps]
    rows.append(["", "wall time (s)", f"{elapsed:.2f}"])
    rows.append(["", "backend", result.backend])
    print(ascii_table(["step", "name", "result"], rows,
                      title=f"Scenario {spec.name!r}"))
    return 0


def _cmd_lint(args) -> int:
    """Run the repo-aware static-analysis rules over source trees.

    Findings print in the classic ``path:line:col: CODE message``
    compiler format; the exit status is 0 for a clean tree, 1 when
    findings remain, 2 for a usage error (bad path, malformed baseline).
    Intentional violations are kept with an inline
    ``# repro: allow[CODE]: justification`` comment; inherited debt is
    grandfathered in a committed baseline that only shrinks
    (``--write-baseline`` records the current findings; a stale entry
    is reported so it can be deleted).

    Usage examples::

        python -m repro lint                      # src tests benchmarks
        python -m repro lint src/repro/engine
        python -m repro lint --list-rules
        python -m repro lint --baseline lint-baseline.json
        python -m repro lint --write-baseline lint-baseline.json
    """
    from .analysis import (
        load_baseline,
        lint_paths,
        rule_catalog,
        write_baseline,
    )

    if args.list_rules:
        print(rule_catalog())
        return 0

    paths = args.paths or ["src", "tests", "benchmarks"]
    try:
        baseline = load_baseline(args.baseline) if args.baseline else None
        report = lint_paths(paths, baseline=baseline)
    except ConfigError as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline:
        write_baseline(args.write_baseline, report.findings)
        print(
            f"wrote baseline {args.write_baseline} "
            f"({len(report.findings)} grandfathered finding(s))"
        )
        return 0

    print(report.format())
    return 0 if report.ok else 1


def _cmd_serve(args) -> int:
    """Serve the analyzer as a long-running localhost job service.

    Boots an :class:`~repro.service.AnalyzerService` behind a
    newline-delimited canonical-JSON socket
    (:class:`~repro.service.AnalyzerServer`): clients submit scenario
    specs with execution policies, jobs flow through a priority queue
    with bounded concurrency and in-flight dedupe, population lots shard
    across a fault-tolerant worker pool, and step results stream back as
    they finish — byte-identical to a synchronous run (see
    :mod:`repro.service`).  ``--port 0`` (the default) binds an
    ephemeral port and prints it; ``--status`` instead queries a
    *running* server and prints its health snapshot as canonical JSON.

    Usage examples::

        python -m repro serve --port 7351
        python -m repro serve --max-running 4
        python -m repro serve --status --port 7351
    """
    import asyncio

    from .reporting.export import canonical_json
    from .service import ServiceClient
    from .service.server import serve

    if args.status:
        if not args.port:
            print(
                "repro serve: --status needs the running server's --port",
                file=sys.stderr,
            )
            return 2
        client = ServiceClient(port=args.port, host=args.host)
        try:
            status = client.status()
        except OSError as exc:
            print(
                f"repro serve: no server at {args.host}:{args.port} ({exc})",
                file=sys.stderr,
            )
            return 1
        print(canonical_json(status), end="")
        return 0

    def announce(host: str, port: int) -> None:
        print(f"repro service listening on {host}:{port}", flush=True)

    try:
        asyncio.run(
            serve(
                args.host,
                args.port,
                max_running=args.max_running,
                announce=announce,
            )
        )
    except KeyboardInterrupt:
        print("repro service stopped")
    return 0


def _cmd_trace(args) -> int:
    """Inspect a recorded trace file.

    ``summarize`` reads the canonical JSONL written by any measurement
    subcommand's ``--trace`` flag and renders a per-span table —
    occurrence count, total and self wall time, mean duration —
    aggregated over repeated span patterns (``job[17]`` folds into
    ``job[*]``), ordered by where the time actually went.

    Usage example::

        python -m repro sweep --points 25 --trace sweep.jsonl
        python -m repro trace summarize sweep.jsonl
    """
    from .obs import summary_table
    from .reporting.export import trace_from_jsonl

    trace = trace_from_jsonl(_read_text(args.trace_file, what="trace"))
    header, rows = summary_table(trace)
    print(ascii_table(header, rows,
                      title=f"Trace summary ({len(trace)} spans)"))
    return 0


def _scenario_overrides(args) -> tuple[str | None, int | None, int | None]:
    """Backend/worker/chunk overrides for the scenario subcommands.

    ``None`` means "use the spec's own default".  A ``--policy`` file
    pins only the fields it actually writes down, so a hand-trimmed
    file (say ``{"n_workers": 2}`` plus the format header) overrides
    exactly what it names — note that ``ExecutionPolicy(...).to_json()``
    writes *every* field and therefore pins all of them.  Explicit
    flags win over the file.  The file's ``seed`` is deliberately
    ignored here: a scenario's seed is part of the spec's
    reproducibility contract (a recorded baseline replays only under
    its own seed), unlike the other subcommands where ``--policy``
    supplies the lot seed.
    """
    import json

    backend, workers = args.backend, args.workers
    chunk = getattr(args, "chunk_size", None)
    if args.policy:
        text = _read_text(args.policy, what="execution policy")
        policy = ExecutionPolicy.from_json(text)  # full strict validation
        present = set(json.loads(text))
        if backend is None and "backend" in present:
            backend = policy.backend
        if workers is None and "n_workers" in present:
            workers = policy.n_workers
        if chunk is None and "chunk_size" in present:
            chunk = policy.chunk_size
    return backend, workers, chunk


def _read_text(path: str, what: str = "scenario spec") -> str:
    try:
        with open(path) as handle:
            return handle.read()
    except OSError as exc:
        raise ConfigError(f"cannot read {what} {path!r}: {exc}") from exc


def _add_sweep_grid(parser: argparse.ArgumentParser) -> None:
    """Arguments shared by the ``bode`` and ``sweep`` grids."""
    parser.add_argument("--cutoff", type=float, default=1000.0,
                        help="DUT cutoff frequency in Hz (default 1000)")
    parser.add_argument("--q", type=float, default=0.7071,
                        help="DUT quality factor (default Butterworth)")
    parser.add_argument("--f-start", type=float, default=100.0,
                        help="sweep start frequency in Hz")
    parser.add_argument("--f-stop", type=float, default=20_000.0,
                        help="sweep stop frequency in Hz")
    parser.add_argument("--points", type=int, default=11,
                        help="number of log-spaced sweep points")
    parser.add_argument("--m-periods", type=int, default=100,
                        help="evaluation window M in signal periods")
    parser.add_argument("--csv", type=str, default=None,
                        help="also export the sweep as CSV to this path")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DATE 2008 analog-BIST network analyzer (reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    execution = _execution_parent()

    sub.add_parser("design", help="print the Table I design summary")

    bode = sub.add_parser(
        "bode", help="Bode characterization of an RC low-pass",
        parents=[execution],
    )
    _add_sweep_grid(bode)

    sweep = sub.add_parser(
        "sweep",
        help="engine-batched Bode sweep (parallel workers, cached calibration)",
        parents=[execution],
    )
    _add_sweep_grid(sweep)
    sweep.add_argument("--repeat", type=_positive_int, default=1,
                       help="re-run the sweep N times (exercises the calibration cache)")

    yld = sub.add_parser(
        "yield", help="Monte-Carlo yield analysis through a BIST program",
        parents=[execution],
    )
    yld.add_argument("--cutoff", type=float, default=1000.0,
                     help="nominal DUT cutoff frequency in Hz")
    yld.add_argument("--devices", type=int, default=25,
                     help="number of Monte-Carlo devices in the lot")
    yld.add_argument("--sigma", type=float, default=0.03,
                     help="relative 1-sigma component spread")
    yld.add_argument("--tolerance-db", type=float, default=2.0,
                     help="gain mask half-width around the golden device (dB)")
    yld.add_argument("--m-periods", type=int, default=40,
                     help="evaluation window M per test point")
    yld.add_argument("--seed", type=int, default=None,
                     help="lot seed (fixes every component draw; "
                          "default: the policy's seed, 0)")
    yld.add_argument("--ambiguous-passes", action="store_true",
                     help="disposition ambiguous devices as passing")

    coverage = sub.add_parser(
        "coverage", help="fault coverage of a BIST program (engine campaign)",
        parents=[execution],
    )
    _add_fault_catalog(coverage)
    coverage.add_argument("--tolerance-db", type=float, default=2.0,
                          help="gain mask half-width around the golden device (dB)")

    prbist = sub.add_parser(
        "prbist",
        help="pseudorandom BIST: LFSR stimulus + MISR signature coverage",
        parents=[execution],
    )
    _add_fault_catalog(prbist)
    prbist.add_argument("--lfsr-width", type=int, default=10,
                        help="LFSR register width in bits (tabulated "
                             "primitive polynomials: 2..16)")
    prbist.add_argument("--form", choices=("fibonacci", "galois"),
                        default="fibonacci",
                        help="LFSR feedback structure (same m-sequence)")
    prbist.add_argument("--patterns", type=_positive_int, default=6,
                        help="pseudorandom patterns (stimulus tones) to draw")
    prbist.add_argument("--misr-width", type=int, default=16,
                        help="MISR signature width in bits (aliasing "
                             "probability is bounded by 2^-width)")
    prbist.add_argument("--seed", type=int, default=None,
                        help="campaign seed (fixes the LFSR start state; "
                             "default: the policy's seed, 0)")

    diagnose_cmd = sub.add_parser(
        "diagnose", help="dictionary-based fault diagnosis of an injected fault",
        parents=[execution],
    )
    _add_fault_catalog(diagnose_cmd)
    diagnose_cmd.add_argument("--inject", type=str, default="r2+50%",
                              help="catalog label of the fault to inject "
                                   "('nominal' for the good device)")
    diagnose_cmd.add_argument("--points", type=int, default=8,
                              help="candidate sweep points for the dictionary")
    diagnose_cmd.add_argument("--decades", type=float, default=1.5,
                              help="candidate sweep span around the cutoff")
    diagnose_cmd.add_argument("--probes", type=int, default=3,
                              help="probe frequencies the diagnosis measures")
    diagnose_cmd.add_argument("--top", type=int, default=5,
                              help="ranked candidates to print")
    diagnose_cmd.add_argument("--dictionary", type=str, default=None,
                              help="also export the production dictionary "
                                   "as JSON to this path")

    distortion = sub.add_parser(
        "distortion", help="HD2/HD3 measurement", parents=[execution]
    )
    distortion.add_argument("--cutoff", type=float, default=1000.0)
    distortion.add_argument("--fwave", type=float, nargs="+", default=[1600.0],
                            help="stimulus frequencies (one engine job each)")
    distortion.add_argument("--amplitude", type=float, default=0.4)
    distortion.add_argument("--hd2", type=float, default=-57.0)
    distortion.add_argument("--hd3", type=float, default=-64.5)
    distortion.add_argument("--m-periods", type=int, default=400)
    distortion.add_argument("--csv", type=str, default=None)

    dynamic = sub.add_parser(
        "dynamic-range", help="dynamic range figures", parents=[execution]
    )
    dynamic.add_argument("--m-periods", type=int, default=200)
    dynamic.add_argument("--fwave", type=float, default=1000.0)

    scenarios = sub.add_parser(
        "scenarios",
        help="declarative scenarios: run/record/check whole test programs",
    )
    scenarios_sub = scenarios.add_subparsers(
        dest="scenarios_command", required=True
    )

    run_p = scenarios_sub.add_parser(
        "run", help="compile and execute a scenario spec", parents=[execution]
    )
    run_p.add_argument("spec", help="path to a scenario spec (JSON)")

    record_p = scenarios_sub.add_parser(
        "record", help="run a spec and write its golden baseline artifact",
        parents=[execution],
    )
    record_p.add_argument("spec", help="path to a scenario spec (JSON)")
    record_p.add_argument("--out", default=None,
                          help="baseline path (default: <scenario name>.json)")

    check_p = scenarios_sub.add_parser(
        "check", help="replay a recorded baseline and report drift",
        parents=[execution],
    )
    check_p.add_argument("baseline", help="path to a recorded baseline (JSON)")
    check_p.add_argument("--update", action="store_true",
                         help="re-record the baseline in place when drift "
                              "is found (after an intentional change)")

    lint_p = sub.add_parser(
        "lint",
        help="repo-aware static analysis (REP001-REP005 contract rules)",
    )
    lint_p.add_argument(
        "paths", nargs="*", default=None,
        help="files/directories to lint (default: src tests benchmarks)")
    lint_p.add_argument(
        "--baseline", default=None, metavar="BASELINE_JSON",
        help="grandfather baseline file; its entries absorb matching "
             "findings (multiset) and stale entries are reported")
    lint_p.add_argument(
        "--write-baseline", default=None, metavar="BASELINE_JSON",
        help="record the current findings as the new baseline and exit 0")
    lint_p.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog (codes + one-line summaries) and exit")

    serve_p = sub.add_parser(
        "serve",
        help="serve the analyzer as a localhost job service "
             "(see repro.service)",
    )
    serve_p.add_argument("--host", default="127.0.0.1",
                         help="interface to bind (default 127.0.0.1)")
    serve_p.add_argument("--port", type=int, default=0,
                         help="TCP port (default 0 = ephemeral, printed "
                              "on startup)")
    serve_p.add_argument("--max-running", type=int, default=2,
                         help="jobs executing concurrently (default 2)")
    serve_p.add_argument("--status", action="store_true",
                         help="query a running server's health snapshot "
                              "(canonical JSON) and exit")

    trace_p = sub.add_parser(
        "trace",
        help="inspect trace files recorded with --trace (see repro.obs)",
    )
    trace_sub = trace_p.add_subparsers(dest="trace_command", required=True)
    summarize_p = trace_sub.add_parser(
        "summarize",
        help="per-span wall-time/count table of a recorded trace",
    )
    summarize_p.add_argument(
        "trace_file", help="path to a trace written by --trace PATH.jsonl"
    )

    return parser


def _add_fault_catalog(parser: argparse.ArgumentParser) -> None:
    """Arguments shared by the fault-campaign subcommands."""
    parser.add_argument("--cutoff", type=float, default=1000.0,
                        help="nominal DUT cutoff frequency in Hz")
    parser.add_argument("--deviations", type=float, nargs="+", default=[0.2, 0.5],
                        help="parametric deviation magnitudes (each applied +/-)")
    parser.add_argument("--catastrophic", action="store_true",
                        help="also include short/open faults for every component")
    parser.add_argument("--m-periods", type=int, default=40,
                        help="evaluation window M per probe point")


_COMMANDS = {
    "design": _cmd_design,
    "bode": _cmd_bode,
    "sweep": _cmd_sweep,
    "yield": _cmd_yield,
    "coverage": _cmd_coverage,
    "prbist": _cmd_prbist,
    "diagnose": _cmd_diagnose,
    "distortion": _cmd_distortion,
    "dynamic-range": _cmd_dynamic_range,
    "scenarios": _cmd_scenarios,
    "lint": _cmd_lint,
    "serve": _cmd_serve,
    "trace": _cmd_trace,
}


def main(argv=None) -> int:
    """Entry point (``python -m repro ...``)."""
    parser = build_parser()
    args = parser.parse_args(argv)
    trace_path = getattr(args, "trace", None)
    if not trace_path:
        return _COMMANDS[args.command](args)

    from .obs import TraceRecorder
    from .reporting.export import trace_to_jsonl

    # One recorder for the whole invocation: the session (or scenario
    # harness) the subcommand builds picks it up via args._obs, and the
    # file is written even when the command fails partway — a trace of
    # a failed run is exactly when you want one.
    recorder = TraceRecorder()
    args._obs = recorder
    try:
        return _COMMANDS[args.command](args)
    finally:
        with open(trace_path, "w") as handle:
            handle.write(trace_to_jsonl(recorder.trace()))
        print(f"wrote trace {trace_path}")


if __name__ == "__main__":
    sys.exit(main())
