"""repro.obs — the observability spine: tracing + metrics for every layer.

Built for the ROADMAP's analyzer-as-a-service step: a job queue
streaming incremental results cannot be operated blind, so execution is
instrumented once, here, and every layer threads through it:

* :class:`~repro.obs.recorder.TraceRecorder` — a span tree (session
  call → scenario step → campaign → job batch → calibration) with
  monotonic timings, outcomes, backend and worker attribution, split
  into an *exact* channel (bit-identical across execution strategies)
  and a *timing* channel (everything that may legitimately vary).
* :class:`~repro.obs.recorder.NullRecorder` — the zero-cost default;
  instrumented hot paths guard per-job work behind ``obs.enabled``.
* :class:`~repro.obs.metrics.MetricRegistry` — typed counters, gauges
  and histograms; the calibration cache's hit/miss/eviction counters
  and the engine's batch/fallback accounting live here (one source of
  truth for ``SessionStats`` and trace export alike).
* :func:`~repro.obs.summary.summarize_trace` /
  :func:`~repro.obs.compare.diff_traces` — per-span time/count
  aggregation (the CLI's ``repro trace summarize``) and golden-style
  exact-channel trace comparison reported by span path.

Canonical JSONL serialization lives with the other byte-stable formats
in :mod:`repro.reporting.export` (``trace_to_jsonl`` /
``trace_from_jsonl``).  See DESIGN.md ("observability") for the span
taxonomy and the channel-split rationale.
"""

from .compare import TraceDiffReport, TraceDrift, diff_traces
from .metrics import Counter, Gauge, Histogram, MetricRegistry, merge_snapshots
from .recorder import (
    NULL_RECORDER,
    NullRecorder,
    Span,
    Trace,
    TraceRecorder,
    default_recorder,
    set_default_recorder,
    use_recorder,
)
from .summary import SpanSummary, normalize_path, summarize_trace, summary_table

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "NULL_RECORDER",
    "NullRecorder",
    "Span",
    "SpanSummary",
    "Trace",
    "TraceDiffReport",
    "TraceDrift",
    "TraceRecorder",
    "default_recorder",
    "diff_traces",
    "merge_snapshots",
    "normalize_path",
    "set_default_recorder",
    "summarize_trace",
    "summary_table",
    "use_recorder",
]
