"""Per-span aggregation of a trace: the ``repro trace summarize`` table.

A raw trace names every span occurrence uniquely (``job[17]``,
``engine.sweep#3``); the summary collapses those occurrences onto their
*pattern* — repetition suffixes stripped, job indices wildcarded — and
aggregates count, total/self/mean time per pattern.  Self time is the
span's duration minus its direct children's, so the table answers "where
does the time actually go" rather than double-counting every parent.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from ..errors import ConfigError
from .recorder import Trace

_REPEAT_SUFFIX = re.compile(r"#\d+$")
_JOB_INDEX = re.compile(r"\[\d+\]")


def normalize_path(path: str) -> str:
    """Collapse one span occurrence path onto its pattern.

    ``scenario:x/step#2/job[17]`` → ``scenario:x/step/job[*]``.
    """
    parts = []
    for part in path.split("/"):
        part = _REPEAT_SUFFIX.sub("", part)
        part = _JOB_INDEX.sub("[*]", part)
        parts.append(part)
    return "/".join(parts)


@dataclass(frozen=True)
class SpanSummary:
    """Aggregated figures for one span pattern."""

    path: str
    kind: str
    count: int
    total_ms: float
    self_ms: float

    @property
    def mean_ms(self) -> float:
        return self.total_ms / self.count if self.count else 0.0


def summarize_trace(trace: Trace) -> tuple[SpanSummary, ...]:
    """Aggregate a trace per span pattern, ordered by self time.

    Deterministic for a given trace: rows sort by descending self time
    with the pattern path as tiebreak, so summarizing a committed trace
    file always renders the same table.
    """
    if not isinstance(trace, Trace):
        raise ConfigError(f"summarize_trace expects a Trace, got {trace!r}")
    child_us: dict[str, float] = {}
    for record in trace.spans:
        parent = record.get("parent")
        if parent is not None:
            child_us[parent] = (
                child_us.get(parent, 0.0) + record["timing"]["duration_us"]
            )
    rows: dict[str, dict] = {}
    for record in trace.spans:
        pattern = normalize_path(record["path"])
        duration = record["timing"]["duration_us"]
        self_us = max(0.0, duration - child_us.get(record["path"], 0.0))
        row = rows.setdefault(
            pattern,
            {"kind": record["kind"], "count": 0, "total": 0.0, "self": 0.0},
        )
        row["count"] += 1
        row["total"] += duration
        row["self"] += self_us
    summaries = [
        SpanSummary(
            path=pattern,
            kind=row["kind"],
            count=row["count"],
            total_ms=row["total"] / 1000.0,
            self_ms=row["self"] / 1000.0,
        )
        for pattern, row in rows.items()
    ]
    summaries.sort(key=lambda s: (-s.self_ms, s.path))
    return tuple(summaries)


def summary_table(trace: Trace) -> tuple[list[str], list[list[str]]]:
    """Header and rows for :func:`repro.reporting.tables.ascii_table`."""
    header = ["span", "kind", "count", "total (ms)", "self (ms)", "mean (ms)"]
    rows = [
        [
            s.path,
            s.kind,
            str(s.count),
            f"{s.total_ms:.3f}",
            f"{s.self_ms:.3f}",
            f"{s.mean_ms:.3f}",
        ]
        for s in summarize_trace(trace)
    ]
    return header, rows
