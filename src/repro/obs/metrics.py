"""Typed metrics: counters, gauges and histograms behind one registry.

Before this module, execution accounting was scattered across ad-hoc
integer attributes: :class:`~repro.engine.cache.CalibrationCache` kept
``hits``/``misses``/``evictions`` as plain ints, and backend/fallback
accounting lived only on :class:`~repro.engine.runner.BatchStats`.  A
:class:`MetricRegistry` names those quantities once, with a type each:

* :class:`Counter` — monotonically increasing event count (cache hits,
  dispatched jobs, backend fallbacks).  ``reset()`` exists only for
  owners with an explicit reset semantic (``CalibrationCache.clear``).
* :class:`Gauge` — a last-written value (effective workers of the most
  recent batch).
* :class:`Histogram` — summary statistics (count/total/min/max) of an
  observed distribution (batch sizes, span durations).

A registry is cheap and thread-safe: one lock guards creation and every
update, so the cache's lock-held increments and a parallel dispatcher's
updates stay exact.  Re-requesting a metric name returns the *same*
instrument (shared semantics — the cache and the session report from
one source of truth); re-requesting it as a different type is a
:class:`~repro.errors.ConfigError`.

``snapshot()`` emits a canonical-JSON-friendly payload; trace export
(:func:`repro.reporting.export.trace_to_jsonl`) embeds it as the trace's
final metrics line.  Metric values include timings and platform-varying
quantities, so snapshots belong to the trace's *timing* channel — they
are never part of the exact-channel determinism contract
(see :mod:`repro.obs.recorder`).
"""

from __future__ import annotations

import math
import threading

from ..errors import ConfigError


class Counter:
    """A monotonically increasing event count."""

    kind = "counter"
    #: Mutated only under ``self._lock`` (enforced by REP005).
    _lock_guarded = ("_value",)

    def __init__(self, name: str, lock: threading.Lock) -> None:
        self.name = name
        self._lock = lock
        self._value = 0

    @property
    def value(self) -> int:
        return self._value

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ConfigError(
                f"counter {self.name!r}: increments must be >= 0, got {n!r}"
            )
        with self._lock:
            self._value += n

    def reset(self) -> None:
        """Zero the count (owners with an explicit reset, e.g. cache.clear)."""
        with self._lock:
            self._value = 0

    def snapshot(self) -> dict:
        return {"type": self.kind, "value": self._value}


class Gauge:
    """A last-written value."""

    kind = "gauge"
    #: Mutated only under ``self._lock`` (enforced by REP005).
    _lock_guarded = ("_value",)

    def __init__(self, name: str, lock: threading.Lock) -> None:
        self.name = name
        self._lock = lock
        self._value = 0.0

    @property
    def value(self) -> float:
        return self._value

    def set(self, value: float) -> None:
        value = float(value)
        if not math.isfinite(value):
            raise ConfigError(
                f"gauge {self.name!r}: value must be finite, got {value!r}"
            )
        with self._lock:
            self._value = value

    def reset(self) -> None:
        with self._lock:
            self._value = 0.0

    def snapshot(self) -> dict:
        return {"type": self.kind, "value": self._value}


class Histogram:
    """Summary statistics of an observed distribution."""

    kind = "histogram"
    #: Mutated only under ``self._lock`` (enforced by REP005).
    _lock_guarded = ("count", "total", "min", "max")

    def __init__(self, name: str, lock: threading.Lock) -> None:
        self.name = name
        self._lock = lock
        self.count = 0
        self.total = 0.0
        self.min = None
        self.max = None

    def observe(self, value: float) -> None:
        value = float(value)
        if not math.isfinite(value):
            raise ConfigError(
                f"histogram {self.name!r}: observed value must be finite, "
                f"got {value!r}"
            )
        with self._lock:
            self.count += 1
            self.total += value
            self.min = value if self.min is None else min(self.min, value)
            self.max = value if self.max is None else max(self.max, value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def reset(self) -> None:
        with self._lock:
            self.count = 0
            self.total = 0.0
            self.min = None
            self.max = None

    def snapshot(self) -> dict:
        return {
            "type": self.kind,
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
        }


class MetricRegistry:
    """A named set of typed instruments with shared-instance semantics."""

    #: Mutated only under ``self._lock`` (enforced by REP005).
    _lock_guarded = ("_metrics",)

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, object] = {}

    def _get(self, name: str, cls):
        if not name or not isinstance(name, str):
            raise ConfigError(f"metric name must be a non-empty string, got {name!r}")
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ConfigError(
                        f"metric {name!r} is a {existing.kind}, not a "
                        f"{cls.kind}; one name, one type"
                    )
                return existing
            metric = cls(name, self._lock)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def names(self) -> tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._metrics))

    def snapshot(self) -> dict:
        """Canonical-JSON-friendly payload: ``{name: {type, ...}}``."""
        with self._lock:
            return {
                name: metric.snapshot()
                for name, metric in sorted(self._metrics.items())
            }


def merge_snapshots(snapshots) -> dict:
    """Combine registry snapshots into one payload.

    A session's cache and runner may carry *separate* registries (an
    adopted cache keeps its own); trace export merges their snapshots.
    Counters and histograms of the same name accumulate; a gauge keeps
    the last snapshot's value; merging a name across different types is
    a :class:`~repro.errors.ConfigError`.
    """
    merged: dict[str, dict] = {}
    for snapshot in snapshots:
        for name, payload in snapshot.items():
            if name not in merged:
                merged[name] = dict(payload)
                continue
            kept = merged[name]
            if kept["type"] != payload["type"]:
                raise ConfigError(
                    f"cannot merge metric {name!r}: {kept['type']} vs "
                    f"{payload['type']}"
                )
            if payload["type"] == "counter":
                kept["value"] += payload["value"]
            elif payload["type"] == "gauge":
                kept["value"] = payload["value"]
            else:  # histogram
                kept["count"] += payload["count"]
                kept["total"] += payload["total"]
                for key, pick in (("min", min), ("max", max)):
                    if kept[key] is None:
                        kept[key] = payload[key]
                    elif payload[key] is not None:
                        kept[key] = pick(kept[key], payload[key])
    return dict(sorted(merged.items()))
