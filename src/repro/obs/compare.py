"""Exact-channel trace comparison, reported by span path.

The tolerance-audit counterpart of the golden-baseline harness's
:func:`repro.scenarios.result.diff`: two recordings of the same
workload — under different worker counts, different backends, or a
recording against a replay — must agree on *tree shape* (the same span
paths in the same order) and on every exact-channel payload; only the
timing channels may differ.  :func:`diff_traces` names every
discrepancy by span path, so "a span went missing under n_workers=2"
reads as exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigError
from .recorder import Trace


@dataclass(frozen=True)
class TraceDrift:
    """One recorded-vs-replayed trace discrepancy, naming the span path."""

    path: str
    field: str
    detail: str

    def __str__(self) -> str:
        return f"span {self.path!r} field {self.field!r}: {self.detail}"


@dataclass(frozen=True)
class TraceDiffReport:
    """Outcome of comparing two traces on the exact channel."""

    drifts: tuple[TraceDrift, ...] = field(default_factory=tuple)

    @property
    def ok(self) -> bool:
        return not self.drifts

    def report(self) -> str:
        if self.ok:
            return "traces agree on the exact channel"
        lines = [f"{len(self.drifts)} trace drift(s) detected"]
        lines.extend(f"  - {drift}" for drift in self.drifts)
        return "\n".join(lines)


def _diff_payload(path: str, where: str, recorded: dict, replayed: dict,
                  out: list) -> None:
    for key in sorted(set(recorded) | set(replayed)):
        name = f"{where}.{key}" if where else key
        if key not in replayed:
            out.append(TraceDrift(path, name, "missing from replay"))
        elif key not in recorded:
            out.append(TraceDrift(path, name, "not in recorded trace"))
        elif recorded[key] != replayed[key]:
            out.append(TraceDrift(
                path, name,
                f"recorded {recorded[key]!r}, replayed {replayed[key]!r}",
            ))


def _diff_events(path: str, recorded: list, replayed: list, out: list) -> None:
    if [e["name"] for e in recorded] != [e["name"] for e in replayed]:
        out.append(TraceDrift(
            path, "events",
            f"recorded {[e['name'] for e in recorded]}, "
            f"replayed {[e['name'] for e in replayed]}",
        ))
        return
    for i, (a, b) in enumerate(zip(recorded, replayed)):
        _diff_payload(path, f"events[{i}].exact", a["exact"], b["exact"], out)


def diff_traces(recorded: Trace, replayed: Trace) -> TraceDiffReport:
    """Compare two traces on shape and exact channels.

    Span paths must occur in the same order with the same name/kind;
    every span's exact payload and its event names + exact payloads
    must match bit-identically.  Timing channels (and the metrics
    snapshot) are never compared — that is the whole point of the
    channel split.
    """
    for trace in (recorded, replayed):
        if not isinstance(trace, Trace):
            raise ConfigError(f"diff_traces expects Trace objects, got {trace!r}")
    drifts: list[TraceDrift] = []
    recorded_paths = recorded.paths()
    replayed_paths = replayed.paths()
    recorded_set = set(recorded_paths)
    replayed_set = set(replayed_paths)
    for path in recorded_paths:
        if path not in replayed_set:
            drifts.append(TraceDrift(path, "span", "missing from replay"))
    for path in replayed_paths:
        if path not in recorded_set:
            drifts.append(TraceDrift(path, "span", "not in recorded trace"))
    if not drifts and recorded_paths != replayed_paths:
        drifts.append(TraceDrift(
            "<trace>", "order",
            f"span order changed: recorded {list(recorded_paths)}, "
            f"replayed {list(replayed_paths)}",
        ))
    by_path = {record["path"]: record for record in replayed.spans}
    for record in recorded.spans:
        other = by_path.get(record["path"])
        if other is None:
            continue
        path = record["path"]
        for key in ("name", "kind"):
            if record[key] != other[key]:
                drifts.append(TraceDrift(
                    path, key,
                    f"recorded {record[key]!r}, replayed {other[key]!r}",
                ))
        _diff_payload(path, "exact", record["exact"], other["exact"], drifts)
        _diff_events(path, record["events"], other["events"], drifts)
    return TraceDiffReport(drifts=tuple(drifts))
