"""Span tracing: where one analyzer run spends its time.

A :class:`TraceRecorder` produces a span tree mirroring the execution
layers (the taxonomy DESIGN.md documents)::

    session.*            one span per Session workload call
      scenario:<name>    one span per scenario run
        <step name>      one span per compiled scenario step
      faults.campaign    one span per fault-dictionary campaign
      prbist.campaign    one span per pseudorandom campaign
        engine.<batch>   one span per engine job batch
          calibration    one span per calibration-cache lookup
          job[i]         one span per dispatched job

Two-channel contract
--------------------
Every span (and every event on it) splits its payload exactly like the
scenario layer's results (:mod:`repro.scenarios.result`):

* ``exact`` — names, kinds, outcomes, job counts, cache hit/miss
  deltas.  Bit-identical across backends, worker counts and platforms:
  the same workload under ``n_workers=1`` or ``4``, reference or
  vectorized, produces the *same tree shape and the same exact
  payloads*.  This is what lets a trace be diffed like a golden
  baseline (:func:`repro.obs.compare.diff_traces`).
* ``timing`` — monotonic start/duration (microseconds, relative to the
  recorder's epoch), the backend that actually executed, effective
  workers, worker attribution.  Everything that may legitimately differ
  between equivalent executions lives here, segregated so golden
  comparisons never read it.

NullRecorder contract
---------------------
:class:`NullRecorder` is the default ``obs=`` everywhere: ``enabled``
is ``False``, ``span()`` hands back one shared no-op span, and nothing
is allocated or stored per call — the instrumented hot paths guard
their per-job work behind ``obs.enabled`` and pay only a context-manager
enter/exit per *batch* otherwise (``benchmarks/bench_obs_overhead.py``
holds the figure within noise; the active recorder must stay under 5 %
on the vectorized throughput workload).

The process-wide default recorder seam (:func:`default_recorder` /
:func:`use_recorder`) lets a harness — the benchmark ``--trace`` opt-in
— trace existing code without threading ``obs=`` through every
constructor.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass

from ..errors import ConfigError
from .metrics import MetricRegistry, merge_snapshots


@dataclass(frozen=True)
class Trace:
    """A completed recording: flattened span records plus metrics.

    ``spans`` is the pre-order flattening of the span tree.  Each record
    is a plain dict — ``path`` (slash-joined ancestry, ``#k``-suffixed
    for repeated sibling names), ``parent``, ``name``, ``kind``,
    ``exact``, ``timing`` and ``events`` — ready for canonical JSONL
    export (:func:`repro.reporting.export.trace_to_jsonl`).  ``metrics``
    is the merged registry snapshot (timing channel), or ``None``.
    """

    spans: tuple = ()
    metrics: dict | None = None

    def __len__(self) -> int:
        return len(self.spans)

    def paths(self) -> tuple[str, ...]:
        return tuple(record["path"] for record in self.spans)


class Span:
    """One timed unit of work, used as a context manager."""

    __slots__ = ("name", "kind", "exact", "timing", "events", "children",
                 "_recorder", "_start_ns", "_duration_ns")

    #: A live span records timings; the shared null span does not.
    recording = True

    def __init__(self, recorder: "TraceRecorder", name: str, kind: str,
                 exact: dict | None) -> None:
        if not name:
            raise ConfigError("span needs a name")
        self.name = name
        self.kind = kind
        self.exact = dict(exact) if exact else {}
        self.timing: dict = {}
        self.events: list[dict] = []
        self.children: list[Span] = []
        self._recorder = recorder
        self._start_ns = None
        self._duration_ns = None

    # ------------------------------------------------------------------
    def annotate(self, **exact) -> None:
        """Attach exact-channel attributes (deterministic values only)."""
        self.exact.update(exact)

    def annotate_timing(self, **timing) -> None:
        """Attach timing-channel attributes (may vary between runs)."""
        self.timing.update(timing)

    def event(self, name: str, exact: dict | None = None,
              timing: dict | None = None) -> None:
        """Record a point event on this span.

        Event *names* and ``exact`` payloads belong to the exact
        channel — emit the same events in the same order on every
        execution strategy, and put anything strategy-dependent (the
        backend actually used, worker attribution) in ``timing``.
        """
        self.events.append({
            "name": name,
            "exact": dict(exact) if exact else {},
            "timing": dict(timing) if timing else {},
        })

    # ------------------------------------------------------------------
    def __enter__(self) -> "Span":
        self._recorder._start(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if "outcome" not in self.exact:
            self.exact["outcome"] = (
                "ok" if exc_type is None else f"error:{exc_type.__name__}"
            )
        self._recorder._finish(self)


class _NullSpan:
    """The shared do-nothing span the :class:`NullRecorder` hands out."""

    __slots__ = ()
    recording = False

    def annotate(self, **exact) -> None:
        pass

    def annotate_timing(self, **timing) -> None:
        pass

    def event(self, name, exact=None, timing=None) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        pass


NULL_SPAN = _NullSpan()


class NullRecorder:
    """The zero-cost default recorder: records nothing, allocates nothing.

    Every ``span()`` call returns the one shared :data:`NULL_SPAN`;
    ``trace()`` is an empty :class:`Trace`.  Instrumented code may hold
    and use a ``NullRecorder`` unconditionally — the contract is that
    doing so costs no more than the attribute checks themselves.
    """

    enabled = False

    def span(self, name: str, kind: str = "span",
             exact: dict | None = None) -> _NullSpan:
        return NULL_SPAN

    def attach_metrics(self, registry: MetricRegistry) -> None:
        pass

    def trace(self) -> Trace:
        return Trace()


#: The module-level shared null recorder (the usual ``obs=None`` default).
NULL_RECORDER = NullRecorder()


class TraceRecorder:
    """Record a span tree with monotonic timings.

    Spans nest per thread (a thread-local stack); completed roots
    accumulate on the recorder.  ``trace()`` snapshots the recording as
    flattened records — it may be called repeatedly, and reflects
    everything finished so far (open spans are reported with
    ``outcome: "open"`` and zero duration).
    """

    enabled = True

    def __init__(self) -> None:
        self._epoch_ns = time.perf_counter_ns()
        self._lock = threading.Lock()
        self._local = threading.local()
        self._roots: list[Span] = []
        self._registries: list[MetricRegistry] = []

    # ------------------------------------------------------------------
    def span(self, name: str, kind: str = "span",
             exact: dict | None = None) -> Span:
        return Span(self, name, kind, exact)

    def attach_metrics(self, registry: MetricRegistry) -> None:
        """Register a metrics source to embed in exported traces."""
        if not isinstance(registry, MetricRegistry):
            raise ConfigError(
                f"attach_metrics expects a MetricRegistry, got {registry!r}"
            )
        with self._lock:
            if not any(r is registry for r in self._registries):
                self._registries.append(registry)

    # ------------------------------------------------------------------
    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _start(self, span: Span) -> None:
        stack = self._stack()
        if stack:
            stack[-1].children.append(span)
        else:
            with self._lock:
                self._roots.append(span)
        stack.append(span)
        span._start_ns = time.perf_counter_ns()

    def _finish(self, span: Span) -> None:
        span._duration_ns = time.perf_counter_ns() - span._start_ns
        stack = self._stack()
        if not stack or stack[-1] is not span:
            raise ConfigError(
                f"span {span.name!r} finished out of order; spans must "
                f"nest (use them as context managers)"
            )
        stack.pop()

    # ------------------------------------------------------------------
    def trace(self) -> Trace:
        """Snapshot the recording as a flat, export-ready :class:`Trace`."""
        records: list[dict] = []
        with self._lock:
            roots = list(self._roots)
            registries = list(self._registries)
        counts: dict[tuple, int] = {}
        for root in roots:
            self._flatten(root, None, counts, records)
        metrics = (
            merge_snapshots(r.snapshot() for r in registries)
            if registries else None
        )
        return Trace(spans=tuple(records), metrics=metrics)

    def _flatten(self, span: Span, parent_path: str | None,
                 counts: dict, records: list) -> None:
        key = (parent_path, span.name)
        counts[key] = counts.get(key, 0) + 1
        name = span.name if counts[key] == 1 else f"{span.name}#{counts[key]}"
        path = name if parent_path is None else f"{parent_path}/{name}"
        start_ns = span._start_ns if span._start_ns is not None else 0
        exact = dict(span.exact)
        if span._duration_ns is None:
            exact.setdefault("outcome", "open")
        timing = {
            "start_us": (start_ns - self._epoch_ns) / 1000.0,
            "duration_us": (span._duration_ns or 0) / 1000.0,
        }
        timing.update(span.timing)
        records.append({
            "type": "span",
            "path": path,
            "parent": parent_path,
            "name": span.name,
            "kind": span.kind,
            "exact": exact,
            "timing": timing,
            "events": [dict(e) for e in span.events],
        })
        for child in list(span.children):
            self._flatten(child, path, counts, records)


# ----------------------------------------------------------------------
# The process-wide default-recorder seam
# ----------------------------------------------------------------------

_default_recorder = NULL_RECORDER
_default_lock = threading.Lock()


def default_recorder():
    """The recorder ``obs=None`` resolves to (a NullRecorder unless set)."""
    return _default_recorder


def set_default_recorder(recorder) -> None:
    """Install a process-wide default recorder (None restores the null)."""
    global _default_recorder
    with _default_lock:
        _default_recorder = recorder if recorder is not None else NULL_RECORDER


@contextmanager
def use_recorder(recorder):
    """Temporarily install ``recorder`` as the process-wide default.

    The benchmark harness's ``--trace`` opt-in wraps each bench in this,
    so sessions and runners constructed inside pick the recorder up
    without any API change.
    """
    previous = _default_recorder
    set_default_recorder(recorder)
    try:
        yield recorder
    finally:
        set_default_recorder(previous)
