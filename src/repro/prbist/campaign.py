"""Pseudorandom-BIST campaign vocabulary: plans, trials and reports.

This module is deliberately engine-free: it defines the *data* of a
pseudorandom fault-coverage campaign — the stimulus plan, the per-fault
trial record, the coverage / signature-check reports, and the hybrid
(pseudorandom ∪ swept-sine) combinator — while the orchestration lives
on the session surface
(:meth:`repro.api.session.Session.pseudorandom_coverage` /
:meth:`~repro.api.session.Session.signature_check`) and the batched
measurement in the engine
(:meth:`repro.engine.runner.BatchRunner.run_pseudorandom_trials`).

The stimulus mapping: each LFSR word ``v`` (``width`` bits, always
non-zero — every ``width``-bit window of an m-sequence is) selects the
log-spaced in-band frequency

    ``f = f_lo * (f_hi / f_lo) ** (v / 2^width)``

so a pseudorandom pattern is a pseudorandom *tone placement* inside the
analyzer's band — the analog counterpart of applying a pseudorandom
digital vector.  The detection taxonomy distinguishes three per-fault
outcomes:

* *responding* — the quantized response stream differs from golden;
* *detected* — the MISR signature differs from golden;
* *aliased* — responding but not detected (the compaction collision
  whose probability the ``2^-width`` bound caps).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.sweep import PAPER_MAX_FREQUENCY, PAPER_MIN_FREQUENCY
from ..errors import ConfigError
from .lfsr import LFSRConfig, lfsr_words
from .misr import MISRConfig, aliasing_bound


def derive_lfsr_seed(seed: int, width: int) -> int:
    """A valid (non-zero) LFSR seed derived from a scenario/policy seed.

    ``seed mod (2^width - 1) + 1`` maps any integer >= 0 onto the full
    non-zero state range deterministically — the scenario compiler and
    the CLI both use this, so a spec's single ``seed`` field fixes the
    pattern sequence exactly.
    """
    if not isinstance(seed, int) or isinstance(seed, bool) or seed < 0:
        raise ConfigError(f"prbist: seed must be an integer >= 0, got {seed!r}")
    return seed % ((1 << width) - 1) + 1


@dataclass(frozen=True)
class PseudorandomPlan:
    """A pseudorandom stimulus plan: LFSR source + band mapping.

    ``n_patterns`` words are drawn from the LFSR (each consuming
    ``width`` bits) and mapped log-uniformly onto ``(f_lo, f_hi)``.
    The plan is pure data — deterministic in the LFSR config alone.
    """

    lfsr: LFSRConfig
    n_patterns: int = 6
    f_lo: float = PAPER_MIN_FREQUENCY
    f_hi: float = PAPER_MAX_FREQUENCY

    def __post_init__(self) -> None:
        if not isinstance(self.lfsr, LFSRConfig):
            raise ConfigError(
                f"prbist plan: lfsr must be an LFSRConfig, got {self.lfsr!r}"
            )
        if (
            not isinstance(self.n_patterns, int)
            or isinstance(self.n_patterns, bool)
            or self.n_patterns < 1
        ):
            raise ConfigError(
                f"prbist plan: n_patterns must be an integer >= 1, "
                f"got {self.n_patterns!r}"
            )
        for fieldname, value in (("f_lo", self.f_lo), ("f_hi", self.f_hi)):
            value = float(value)
            if not PAPER_MIN_FREQUENCY <= value <= PAPER_MAX_FREQUENCY:
                raise ConfigError(
                    f"prbist plan: {fieldname} = {value:g} Hz is outside "
                    f"the analyzer band [{PAPER_MIN_FREQUENCY:g}, "
                    f"{PAPER_MAX_FREQUENCY:g}] Hz"
                )
        object.__setattr__(self, "f_lo", float(self.f_lo))
        object.__setattr__(self, "f_hi", float(self.f_hi))
        if not self.f_lo < self.f_hi:
            raise ConfigError(
                f"prbist plan: f_lo {self.f_lo:g} must be below "
                f"f_hi {self.f_hi:g}"
            )

    def words(self) -> tuple[int, ...]:
        """The plan's LFSR words (``n_patterns`` of them)."""
        return lfsr_words(self.lfsr, self.n_patterns)

    def frequencies(self) -> tuple[float, ...]:
        """The pseudorandom tone placements, in pattern order.

        Every word is non-zero, so every frequency lies strictly inside
        ``(f_lo, f_hi)`` — always in the analyzer's valid band.
        """
        span = float(1 << self.lfsr.width)
        ratio = self.f_hi / self.f_lo
        return tuple(
            self.f_lo * ratio ** (word / span) for word in self.words()
        )


def campaign_attrs(plan: PseudorandomPlan, misr: MISRConfig, n_devices: int) -> dict:
    """Exact-channel span attributes of one pseudorandom campaign.

    Everything here is pure plan/register data — deterministic in the
    spec alone — so the ``prbist.campaign`` trace span carries it on the
    exact channel (see :mod:`repro.obs.recorder`).
    """
    return {
        "n_devices": int(n_devices),
        "n_patterns": plan.n_patterns,
        "lfsr_width": plan.lfsr.width,
        "misr_width": misr.width,
    }


@dataclass(frozen=True)
class PrbistFaultTrial:
    """One catalog fault's pseudorandom-campaign outcome."""

    label: str
    responding: bool
    detected: bool
    signature: int

    @property
    def aliased(self) -> bool:
        """Response moved but the signature collided with golden."""
        return self.responding and not self.detected


@dataclass(frozen=True)
class PrbistCoverageReport:
    """A pseudorandom fault-coverage campaign's full record."""

    plan: PseudorandomPlan
    misr: MISRConfig
    frequencies: tuple[float, ...]
    golden_words: tuple[int, ...]
    golden_signature: int
    trials: tuple[PrbistFaultTrial, ...]

    @property
    def coverage(self) -> float:
        """Fraction of catalog faults the signature comparison detects."""
        return sum(t.detected for t in self.trials) / len(self.trials)

    @property
    def response_rate(self) -> float:
        """Fraction of faults that disturb the quantized response."""
        return sum(t.responding for t in self.trials) / len(self.trials)

    @property
    def aliasing_rate(self) -> float:
        """Aliased fraction *of responding faults* (0.0 when none respond).

        The catalog-measured counterpart of :func:`aliasing_bound`; with
        a healthy register it stays within counting tolerance of
        ``2^-width``.
        """
        responding = sum(t.responding for t in self.trials)
        if responding == 0:
            return 0.0
        return sum(t.aliased for t in self.trials) / responding

    @property
    def aliasing_bound(self) -> float:
        """The theoretical ``2^-width`` bound for this register."""
        return aliasing_bound(self.misr.width)

    @property
    def escapes(self) -> tuple[str, ...]:
        """Labels of undetected faults."""
        return tuple(t.label for t in self.trials if not t.detected)

    @property
    def aliased_labels(self) -> tuple[str, ...]:
        """Labels of responding-but-undetected (aliased) faults."""
        return tuple(t.label for t in self.trials if t.aliased)


@dataclass(frozen=True)
class SignatureCheckReport:
    """One device's go/no-go signature comparison against golden."""

    inject: str
    misr: MISRConfig
    frequencies: tuple[float, ...]
    golden_words: tuple[int, ...]
    golden_signature: int
    measured_words: tuple[int, ...]
    measured_signature: int

    @property
    def match(self) -> bool:
        """Signature equality — the pass verdict."""
        return self.measured_signature == self.golden_signature

    @property
    def responding(self) -> bool:
        """Whether the quantized response stream moved at all."""
        return self.measured_words != self.golden_words

    @property
    def aliased(self) -> bool:
        """Response moved yet the signature matched (a compaction miss)."""
        return self.responding and self.match


@dataclass(frozen=True)
class HybridCoverage:
    """Union coverage of a pseudorandom and a swept-sine campaign.

    A fault counts as detected when *either* stimulus family flags it —
    the Fault-Trajectory argument (arXiv 0710.4725) that richer
    stimulus families shrink the escape set.
    """

    labels: tuple[str, ...]
    detected: tuple[bool, ...]

    @property
    def coverage(self) -> float:
        return sum(self.detected) / len(self.detected)

    @property
    def escapes(self) -> tuple[str, ...]:
        return tuple(
            label
            for label, hit in zip(self.labels, self.detected)
            if not hit
        )


def hybrid_coverage(
    labels,
    pseudorandom_detected,
    sweep_detected,
) -> HybridCoverage:
    """Combine per-fault detection verdicts from two stimulus families.

    All three sequences must align element-wise on the same catalog
    order (the head-to-head scenario guarantees it: both steps
    enumerate the same catalog).
    """
    labels = tuple(str(label) for label in labels)
    pr = tuple(bool(d) for d in pseudorandom_detected)
    sw = tuple(bool(d) for d in sweep_detected)
    if not labels:
        raise ConfigError("hybrid coverage: fault label list is empty")
    if len(pr) != len(labels) or len(sw) != len(labels):
        raise ConfigError(
            f"hybrid coverage: misaligned campaigns — {len(labels)} "
            f"labels vs {len(pr)} pseudorandom and {len(sw)} sweep "
            f"verdicts"
        )
    return HybridCoverage(
        labels=labels,
        detected=tuple(p or s for p, s in zip(pr, sw)),
    )
