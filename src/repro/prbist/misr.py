"""Multiple-input signature register: response compaction with a bound.

A MISR is a Galois LFSR whose state is additionally XORed with one
input word per clock: after ``n`` words the register holds an ``n_bit``
*signature* of the whole response stream.  Signature comparison against
a known-good (golden) signature is the pass/fail decision — the classic
space compaction of digital BIST, applied here to the analyzer's
*integer* response channel: each gain/phase measurement contributes its
four counted sigma-delta signature integers (I1/I2 of the output and
reference channels), masked to the register width.  Those integers are
the evaluator path's exact channel — bit-identical across backends and
worker counts — so MISR signatures inherit the same invariance.

Aliasing contract
-----------------
The register update is linear over GF(2), so a faulty response aliases
(compacts to the golden signature) exactly when the *error* stream's
syndrome is zero — for effectively random error streams that happens
with probability ``~= 2^-width`` (:func:`aliasing_bound`).
:func:`measure_aliasing` measures the realized rate by vectorized
Monte-Carlo over random non-zero error streams; the test suite pins the
measurement to the bound within binomial-counting tolerance, and the
fault-catalog campaign reports its (catalog-)measured aliasing rate
against the same bound.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError
from .lfsr import PRIMITIVE_POLYNOMIALS, LFSRConfig

#: Default signature width: 16 bits keeps the aliasing bound at
#: ``2^-16 ~= 1.5e-5`` — negligible against a 30-fault catalog.
DEFAULT_MISR_WIDTH = 16

#: Integer response words contributed per gain/phase measurement
#: (output I1/I2 and reference I1/I2 signature counts).
WORDS_PER_MEASUREMENT = 4


@dataclass(frozen=True)
class MISRConfig:
    """A fully determined MISR: width and initial state.

    Unlike the pattern-source LFSR, the all-zero seed is legal (and the
    default): input words drive the state off zero, and a zero start
    makes the signature a pure function of the response stream.
    """

    width: int = DEFAULT_MISR_WIDTH
    seed: int = 0

    def __post_init__(self) -> None:
        if self.width not in PRIMITIVE_POLYNOMIALS:
            raise ConfigError(
                f"misr: width must be one of "
                f"{sorted(PRIMITIVE_POLYNOMIALS)} (tabulated primitive "
                f"polynomials), got {self.width!r}"
            )
        if (
            not isinstance(self.seed, int)
            or isinstance(self.seed, bool)
            or not 0 <= self.seed <= self.state_mask
        ):
            raise ConfigError(
                f"misr: seed must be an integer in [0, {self.state_mask}], "
                f"got {self.seed!r}"
            )

    @property
    def state_mask(self) -> int:
        return (1 << self.width) - 1

    @property
    def polynomial_mask(self) -> int:
        """The Galois reduction mask of the tabulated polynomial."""
        # Reuse the LFSR's mask derivation (seed value is irrelevant).
        return LFSRConfig(width=self.width, seed=1).polynomial_mask


def aliasing_bound(width: int) -> float:
    """Theoretical aliasing probability of a ``width``-bit MISR."""
    if width not in PRIMITIVE_POLYNOMIALS:
        raise ConfigError(
            f"misr: width must be one of {sorted(PRIMITIVE_POLYNOMIALS)}, "
            f"got {width!r}"
        )
    return 2.0 ** -width


def misr_compact(words, config: MISRConfig) -> int:
    """Fold a word stream into the register's final signature.

    One Galois LFSR step plus an input XOR per word; words are masked
    to the register width (negative counted signatures fold in by
    two's-complement masking, which Python's ``&`` performs exactly).
    """
    mask = config.state_mask
    poly = config.polynomial_mask
    top = config.width - 1
    state = config.seed
    for word in words:
        msb = (state >> top) & 1
        state = ((state << 1) & mask) ^ (poly if msb else 0) ^ (int(word) & mask)
    return state


def misr_compact_array(streams: np.ndarray, config: MISRConfig) -> np.ndarray:
    """Signatures of many word streams at once.

    ``streams`` is a ``(n_streams, n_words)`` integer array; the return
    is ``n_streams`` signatures.  The register recurrence is inherently
    serial in the word axis, so the time loop stays — but each step is
    one vector operation over all streams, which is what makes the
    Monte-Carlo aliasing measurement cheap.  Bit-identical to
    :func:`misr_compact` per stream.
    """
    streams = np.asarray(streams)
    if streams.ndim != 2:
        raise ConfigError(
            f"misr: expected a (n_streams, n_words) array, "
            f"got shape {streams.shape}"
        )
    mask = np.uint32(config.state_mask)
    poly = np.uint32(config.polynomial_mask)
    top = np.uint32(config.width - 1)
    words = streams.astype(np.uint32) & mask
    state = np.full(streams.shape[0], config.seed, dtype=np.uint32)
    for k in range(streams.shape[1]):
        msb = state >> top
        state = ((state << np.uint32(1)) & mask) ^ (msb * poly) ^ words[:, k]
    return state


def response_words(measurements, width: int) -> tuple[int, ...]:
    """The MISR input stream of a multi-frequency response.

    Each :class:`~repro.core.measurement.GainPhaseMeasurement`
    contributes :data:`WORDS_PER_MEASUREMENT` words — the output and
    reference channels' counted I1/I2 signature integers, masked to the
    register width.  These are exactly the integers the scenario
    layer's exact channel records, so the word stream (and therefore
    the signature) is bit-identical across backends and worker counts.
    """
    mask = (1 << width) - 1
    words = []
    for m in measurements:
        words.extend(
            (
                m.output.signature.i1 & mask,
                m.output.signature.i2 & mask,
                m.reference.signature.i1 & mask,
                m.reference.signature.i2 & mask,
            )
        )
    return tuple(words)


@dataclass(frozen=True)
class PrbistTrial:
    """One device's pseudorandom-response record.

    ``words`` is the full quantized response stream (the MISR input),
    ``signature`` its compacted register state.  Keeping the words on
    the trial is what lets the campaign distinguish *aliased* faults
    (response moved, signature did not) from non-responding ones.
    """

    words: tuple[int, ...]
    signature: int


@dataclass(frozen=True)
class AliasingMeasurement:
    """A Monte-Carlo aliasing measurement against the ``2^-n`` bound."""

    width: int
    n_trials: int
    n_aliased: int

    @property
    def rate(self) -> float:
        """Measured aliasing probability."""
        return self.n_aliased / self.n_trials

    @property
    def bound(self) -> float:
        """Theoretical ``2^-width`` aliasing probability."""
        return aliasing_bound(self.width)

    @property
    def counting_sigma(self) -> float:
        """One binomial standard deviation of :attr:`rate` at the bound.

        The documented tolerance of the measurement: a healthy MISR
        measures ``|rate - bound|`` within a few ``counting_sigma``.
        """
        p = self.bound
        return (p * (1.0 - p) / self.n_trials) ** 0.5


def measure_aliasing(
    config: MISRConfig,
    n_words: int = 16,
    n_trials: int = 100_000,
    seed: int = 0,
) -> AliasingMeasurement:
    """Measure the aliasing rate over random non-zero error streams.

    Draws one golden word stream and ``n_trials`` random error streams
    (each guaranteed non-zero — a zero error is not a fault), compacts
    golden and faulty streams, and counts collisions with the golden
    signature.  Deterministic in ``seed``; fully vectorized over the
    trial axis via :func:`misr_compact_array`.
    """
    if n_words < 1:
        raise ConfigError(f"misr: n_words must be >= 1, got {n_words}")
    if n_trials < 1:
        raise ConfigError(f"misr: n_trials must be >= 1, got {n_trials}")
    rng = np.random.default_rng(seed)
    span = 1 << config.width
    golden = rng.integers(0, span, size=n_words, dtype=np.uint32)
    errors = rng.integers(0, span, size=(n_trials, n_words), dtype=np.uint32)
    zero_rows = ~errors.any(axis=1)
    errors[zero_rows, 0] = 1  # a fault must disturb at least one word
    golden_signature = misr_compact_array(golden[np.newaxis, :], config)[0]
    signatures = misr_compact_array(golden[np.newaxis, :] ^ errors, config)
    return AliasingMeasurement(
        width=config.width,
        n_trials=n_trials,
        n_aliased=int(np.count_nonzero(signatures == golden_signature)),
    )
