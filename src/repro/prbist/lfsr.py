"""Linear-feedback shift registers: the pseudorandom pattern source.

An LFSR over a primitive polynomial ``p(x)`` of degree ``w`` emits a
maximal-length (*m*-) sequence: period ``2^w - 1`` with exactly
``2^(w-1)`` ones per period (the balance property the test suite pins
for every tabulated polynomial).  Two classic register forms are
implemented, both stepping the same polynomial:

* **Fibonacci** (external feedback): the register shifts right, the new
  MSB is the XOR of the tapped bits (parity of ``state & poly_mask``),
  and the bit shifted out of the LSB is the output.
* **Galois** (internal feedback): the register shifts left —
  multiplication by ``x`` in ``GF(2)[x]/p(x)`` — the bit shifted out of
  the MSB is the output, and when it is 1 the polynomial mask is XORed
  back into the state (the reduction mod ``p``).

Both forms' output sequences are sequences of the same characteristic
polynomial, so both satisfy the linear recurrence

    ``b[n] = b[n - w]  XOR  b[n - (w - t)]  for every middle tap t``

— which is what the vectorized implementation exploits: after seeding
the first ``w`` output bits with the bitwise reference stepper, the
remainder fills in chunks of ``min(lag)`` bits as whole-array XORs.
The reference and vectorized paths are bit-identical (property-tested
in ``tests/prbist/test_lfsr_properties.py``), mirroring the engine's
reference/vectorized backend contract.

The tap table lists one primitive polynomial per width; every entry is
verified maximal-length and balanced by the test suite, so a tabulated
width is a *guaranteed* full-period pattern source.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError

#: One primitive polynomial per register width, as exponent tuples:
#: ``(w, t1, t2, ...)`` stands for ``x^w + x^t1 + x^t2 + ... + 1``.
#: Every entry yields a maximal-length sequence (period ``2^w - 1``);
#: the property suite re-verifies period and balance for each width.
PRIMITIVE_POLYNOMIALS = {
    2: (2, 1),
    3: (3, 1),
    4: (4, 1),
    5: (5, 2),
    6: (6, 1),
    7: (7, 1),
    8: (8, 4, 3, 2),
    9: (9, 4),
    10: (10, 3),
    11: (11, 2),
    12: (12, 6, 4, 1),
    13: (13, 4, 3, 1),
    14: (14, 10, 6, 1),
    15: (15, 1),
    16: (16, 12, 3, 1),
}

#: The two register forms an LFSR can step.
LFSR_FORMS = ("fibonacci", "galois")


@dataclass(frozen=True)
class LFSRConfig:
    """A fully determined LFSR: width, register form, and seed.

    The seed is the initial register state and must be non-zero — the
    all-zero state is the one fixed point of the feedback and would
    lock the register up emitting zeros forever.
    """

    width: int = 10
    form: str = "fibonacci"
    seed: int = 1

    def __post_init__(self) -> None:
        if self.width not in PRIMITIVE_POLYNOMIALS:
            raise ConfigError(
                f"lfsr: width must be one of "
                f"{sorted(PRIMITIVE_POLYNOMIALS)} (tabulated primitive "
                f"polynomials), got {self.width!r}"
            )
        if self.form not in LFSR_FORMS:
            raise ConfigError(
                f"lfsr: form must be one of {LFSR_FORMS}, got {self.form!r}"
            )
        if (
            not isinstance(self.seed, int)
            or isinstance(self.seed, bool)
            or not 1 <= self.seed <= self.state_mask
        ):
            raise ConfigError(
                f"lfsr: seed must be a non-zero integer in "
                f"[1, {self.state_mask}] (the all-zero state locks the "
                f"register), got {self.seed!r}"
            )

    @property
    def taps(self) -> tuple[int, ...]:
        """The tabulated polynomial's exponents (width included)."""
        return PRIMITIVE_POLYNOMIALS[self.width]

    @property
    def state_mask(self) -> int:
        """All-ones register mask, ``2^width - 1``."""
        return (1 << self.width) - 1

    @property
    def polynomial_mask(self) -> int:
        """``p(x)`` minus its leading term as a bit mask.

        Bit 0 (the ``+ 1`` term) plus one bit per middle exponent —
        the Fibonacci tap mask and the Galois reduction mask alike.
        """
        mask = 1
        for t in self.taps:
            if t != self.width:
                mask |= 1 << t
        return mask

    @property
    def period(self) -> int:
        """The maximal-length period, ``2^width - 1``."""
        return self.state_mask

    @property
    def recurrence_lags(self) -> tuple[int, ...]:
        """Lags of the output recurrence, ascending.

        ``{w} ∪ {w - t : t a middle exponent}`` — both register forms'
        output sequences satisfy ``b[n] = XOR of b[n - lag]`` over these
        lags (the characteristic-polynomial recurrence).
        """
        lags = {self.width}
        for t in self.taps:
            if t != self.width:
                lags.add(self.width - t)
        lags.discard(0)  # the + 1 term maps to lag w, already present
        return tuple(sorted(lags))


def _step_fibonacci(state: int, config: LFSRConfig) -> tuple[int, int]:
    """One Fibonacci step: (output bit, next state)."""
    out = state & 1
    feedback = bin(state & config.polynomial_mask).count("1") & 1
    return out, (state >> 1) | (feedback << (config.width - 1))


def _step_galois(state: int, config: LFSRConfig) -> tuple[int, int]:
    """One Galois step (multiply by ``x`` mod ``p``): (output, next)."""
    out = (state >> (config.width - 1)) & 1
    state = (state << 1) & config.state_mask
    if out:
        state ^= config.polynomial_mask
    return out, state


_STEPPERS = {"fibonacci": _step_fibonacci, "galois": _step_galois}


def _require_count(n) -> int:
    if not isinstance(n, int) or isinstance(n, bool) or n < 0:
        raise ConfigError(f"lfsr: bit count must be an integer >= 0, got {n!r}")
    return n


def lfsr_bits_reference(config: LFSRConfig, n: int) -> list[int]:
    """The first ``n`` output bits, stepped one register tick at a time.

    The ground-truth implementation: a literal hardware simulation of
    the chosen register form.
    """
    n = _require_count(n)
    step = _STEPPERS[config.form]
    state = config.seed
    bits = []
    for _ in range(n):
        out, state = step(state, config)
        bits.append(out)
    return bits


def lfsr_bits_vectorized(config: LFSRConfig, n: int) -> np.ndarray:
    """The first ``n`` output bits as a ``uint8`` array.

    Seeds the first ``width`` bits with the reference stepper, then
    fills the rest through the output recurrence in chunks of
    ``min(recurrence_lags)`` bits — each chunk is one whole-array XOR
    per lag instead of one Python call per bit.  Bit-identical to
    :func:`lfsr_bits_reference` for both register forms.
    """
    n = _require_count(n)
    bits = np.empty(n, dtype=np.uint8)
    head = lfsr_bits_reference(config, min(config.width, n))
    bits[: len(head)] = head
    lags = config.recurrence_lags
    chunk = lags[0]
    i = config.width
    while i < n:
        j = min(chunk, n - i)
        acc = bits[i - lags[0] : i - lags[0] + j].copy()
        for lag in lags[1:]:
            np.bitwise_xor(acc, bits[i - lag : i - lag + j], out=acc)
        bits[i : i + j] = acc
        i += j
    return bits


# repro: allow[REP002]: compute-backend selector (bit-identical by
# contract, mirrors the engine seam) — not an execution resource
def lfsr_bits(config: LFSRConfig, n: int, backend: str = "reference") -> list[int]:
    """The first ``n`` output bits on the chosen backend (as a list).

    Mirrors the engine's backend seam: ``"reference"`` steps the
    register bitwise, ``"vectorized"`` uses the chunked recurrence —
    guaranteed bit-identical, so callers may pick freely by cost.
    """
    if backend == "reference":
        return lfsr_bits_reference(config, n)
    if backend == "vectorized":
        return [int(b) for b in lfsr_bits_vectorized(config, n)]
    raise ConfigError(
        f"lfsr: unknown backend {backend!r}; expected 'reference' or "
        f"'vectorized'"
    )


# repro: allow[REP002]: compute-backend selector (bit-identical by
# contract, mirrors the engine seam) — not an execution resource
def lfsr_words(config: LFSRConfig, n_words: int, backend: str = "vectorized") -> tuple[int, ...]:
    """``n_words`` register-width words, MSB-first from the bit stream.

    Each word consumes ``width`` consecutive output bits.  Because every
    ``width``-bit window of an m-sequence is non-zero, every word is in
    ``[1, 2^width - 1]`` — a property the frequency mapping relies on.
    """
    bits = lfsr_bits(config, _require_count(n_words) * config.width, backend)
    words = []
    for i in range(n_words):
        word = 0
        for bit in bits[i * config.width : (i + 1) * config.width]:
            word = (word << 1) | int(bit)
        words.append(word)
    return tuple(words)


def lfsr_period(config: LFSRConfig) -> int:
    """The measured state period: steps until the seed state recurs.

    For a primitive polynomial this equals ``config.period``
    (``2^width - 1``) from any non-zero seed — the maximal-length
    property the test suite asserts for every tabulated width.
    """
    step = _STEPPERS[config.form]
    state = config.seed
    for count in range(1, (1 << config.width) + 1):
        _, state = step(state, config)
        if state == config.seed:
            return count
    raise ConfigError(
        f"lfsr: state space exhausted without the seed state recurring "
        f"(width={config.width}, taps={config.taps!r}, "
        f"seed={config.seed:#x}) — the step function is not invertible"
    )
