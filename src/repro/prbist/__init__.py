"""Pseudorandom-stimulus BIST: LFSR pattern generation + MISR compaction.

The paper's analyzer measures with swept-sine stimuli; the classic
digital-BIST alternative applies *pseudorandom* patterns and compacts
the response into a short signature register (Ahmad's MISR study,
arXiv 1102.0884, grounds the structure and the aliasing analysis).  This
package carries that workload family over to the analog analyzer:

* :mod:`~repro.prbist.lfsr` — a configurable linear-feedback shift
  register (Fibonacci and Galois forms, primitive-polynomial tap table
  for widths 2..16, seed-deterministic), with a bitwise reference
  implementation and a vectorized chunked-recurrence implementation on
  the engine's backend seam;
* :mod:`~repro.prbist.misr` — a multiple-input signature register that
  folds the evaluator's integer sigma-delta signature counts into an
  n-bit signature, plus a vectorized Monte-Carlo aliasing measurement
  against the theoretical ``2^-n`` bound;
* :mod:`~repro.prbist.campaign` — the campaign vocabulary: a
  :class:`~repro.prbist.campaign.PseudorandomPlan` mapping LFSR words
  onto in-band stimulus frequencies, per-fault trial records, coverage
  and signature-check reports, and the hybrid (pseudorandom ∪
  swept-sine) coverage combinator.

End-to-end exposure lives in the existing layers: engine jobs
(:class:`~repro.engine.jobs.PseudorandomTrialJob`), scenario steps
(``pseudorandom`` / ``signature_check``), the session surface
(:meth:`~repro.api.session.Session.pseudorandom_coverage`) and the CLI
(``python -m repro prbist``).  See DESIGN.md ("the pseudorandom BIST
path") and EXPERIMENTS.md for the head-to-head coverage figures.
"""

from .campaign import (
    HybridCoverage,
    PrbistCoverageReport,
    PrbistFaultTrial,
    PseudorandomPlan,
    SignatureCheckReport,
    derive_lfsr_seed,
    hybrid_coverage,
)
from .lfsr import (
    LFSR_FORMS,
    PRIMITIVE_POLYNOMIALS,
    LFSRConfig,
    lfsr_bits,
    lfsr_bits_reference,
    lfsr_bits_vectorized,
    lfsr_period,
    lfsr_words,
)
from .misr import (
    DEFAULT_MISR_WIDTH,
    AliasingMeasurement,
    MISRConfig,
    PrbistTrial,
    aliasing_bound,
    measure_aliasing,
    misr_compact,
    misr_compact_array,
    response_words,
)

__all__ = [
    "AliasingMeasurement",
    "DEFAULT_MISR_WIDTH",
    "HybridCoverage",
    "LFSR_FORMS",
    "LFSRConfig",
    "MISRConfig",
    "PRIMITIVE_POLYNOMIALS",
    "PrbistCoverageReport",
    "PrbistFaultTrial",
    "PrbistTrial",
    "PseudorandomPlan",
    "SignatureCheckReport",
    "aliasing_bound",
    "derive_lfsr_seed",
    "hybrid_coverage",
    "lfsr_bits",
    "lfsr_bits_reference",
    "lfsr_bits_vectorized",
    "lfsr_period",
    "lfsr_words",
    "measure_aliasing",
    "misr_compact",
    "misr_compact_array",
    "response_words",
]
