"""The analyzer service: an asyncio scheduler over one shared Session path.

:class:`AnalyzerService` is the in-process core of analyzer-as-a-service
(the TCP front end lives in :mod:`repro.service.server`).  It accepts
``(ScenarioSpec, ExecutionPolicy)`` submissions, schedules them through
a :class:`~repro.service.queue.JobQueue` (priorities, bounded
concurrency, in-flight content dedupe) and executes each job through the
*same* path a synchronous caller uses: ``compile_scenario`` →
:class:`~repro.api.session.Session` methods — just on a
:class:`~repro.service.sharding.ShardingRunner` whose population batches
fan out over a per-job :class:`~repro.service.sharding.WorkerPool`.
Because per-job seed substreams are indexed by absolute lot position,
the service's answer is byte-identical to
:meth:`~repro.api.session.Session.run_scenario` — including after a
worker death and retry.

One event loop, one thread: all service state (queue, jobs, subscriber
lists) is touched only from the loop thread, so the scheduler needs no
locks.  Blocking work — step execution, worker-pool teardown — runs in
the loop's default executor; worker threads communicate exclusively
through return values.

Every job shares the service-wide
:class:`~repro.engine.cache.CalibrationCache` (a calibration acquired
for job 1 is a hit for job 2 at the same configuration) and one
:class:`~repro.obs.MetricRegistry` holding the ``service.*`` counters:
``service.jobs.submitted`` / ``deduped`` / ``completed`` / ``failed`` /
``cancelled``, ``service.shards``, ``service.worker_deaths`` and
``service.retries``.  :meth:`AnalyzerService.status` snapshots all of it
for the ``status`` endpoint.
"""

from __future__ import annotations

import asyncio
from typing import TYPE_CHECKING

from ..api.policy import ExecutionPolicy, Recorder
from ..api.session import Session
from ..errors import ReproError
from ..obs.metrics import MetricRegistry
from ..obs.recorder import default_recorder
from ..scenarios.compiler import CompiledStep, compile_scenario
from ..scenarios.result import ScenarioResult, StepResult
from .jobs import Job
from .queue import JobQueue
from .sharding import ShardingRunner, WorkerPool, worker_runner_factory
from .wire import error_frame, result_frame, state_frame, step_frame

if TYPE_CHECKING:
    from ..scenarios.spec import ScenarioSpec


def policy_for_spec(spec: "ScenarioSpec") -> ExecutionPolicy:
    """The policy a submission defaults to: the spec's own execution fields.

    Mirrors what :meth:`~repro.scenarios.compiler.CompiledScenario.run`
    does when called without overrides, so submitting a spec with no
    policy runs it exactly as ``repro scenarios run`` would.
    """
    return ExecutionPolicy(
        backend=spec.backend,
        n_workers=spec.n_workers,
        seed=spec.seed,
        chunk_size=spec.chunk_size,
    )


class AnalyzerService:
    """Async job scheduler executing scenarios on shared engine resources.

    Parameters
    ----------
    max_running:
        Jobs executing concurrently; further submissions wait ``queued``.
    cache_max_entries:
        LRU bound of the service-wide calibration cache (defaults to the
        :class:`~repro.api.policy.ExecutionPolicy` default).
    obs:
        Trace recorder for ``service.*`` spans (process default when
        omitted).
    metrics:
        Service-wide registry; a private one is created when omitted.
    chaos_kill_shard:
        Deterministic fault injection for the *next started job*: its
        ``k``-th shard task raises
        :class:`~repro.service.sharding.WorkerDied`, killing a worker
        mid-job.  One-shot — the harness knob behind the retry
        bit-identity tests; see :class:`ShardingRunner`.

    Must be constructed and driven from a running event loop (its jobs
    carry :class:`asyncio.Event` completion latches).
    """

    def __init__(
        self,
        *,
        max_running: int = 2,
        cache_max_entries: int | None = None,
        obs: Recorder | None = None,
        metrics: MetricRegistry | None = None,
        chaos_kill_shard: int | None = None,
    ) -> None:
        self.obs = obs if obs is not None else default_recorder()
        self.metrics = metrics if metrics is not None else MetricRegistry()
        base = ExecutionPolicy() if cache_max_entries is None else (
            ExecutionPolicy(cache_max_entries=cache_max_entries)
        )
        self.cache = base.build_cache(obs=self.obs, metrics=self.metrics)
        self.queue = JobQueue(max_running=max_running)
        self.obs.attach_metrics(self.metrics)
        self._sequence = 0
        self._chaos_kill_shard = chaos_kill_shard
        self._tasks: set[asyncio.Task] = set()
        self._subscribers: dict[str, list[asyncio.Queue]] = {}
        self._submitted = self.metrics.counter("service.jobs.submitted")
        self._deduped = self.metrics.counter("service.jobs.deduped")
        self._completed = self.metrics.counter("service.jobs.completed")
        self._failed = self.metrics.counter("service.jobs.failed")
        self._cancelled = self.metrics.counter("service.jobs.cancelled")

    # ------------------------------------------------------------------
    # Intake (loop thread only)
    # ------------------------------------------------------------------
    def submit(
        self,
        spec: "ScenarioSpec",
        policy: ExecutionPolicy | None = None,
        priority: int = 0,
    ) -> Job:
        """Enqueue a scenario; the (possibly deduped) tracked job.

        An in-flight job with the same ``(spec_key, policy_key)`` content
        is returned instead of enqueueing duplicate work — check
        ``job.frames`` / :meth:`subscribe` to catch up on its stream.
        """
        job, _ = self.submit_job(spec, policy=policy, priority=priority)
        return job

    def submit_job(
        self,
        spec: "ScenarioSpec",
        policy: ExecutionPolicy | None = None,
        priority: int = 0,
    ) -> tuple[Job, bool]:
        """:meth:`submit`, also reporting whether the job was deduped."""
        if policy is None:
            policy = policy_for_spec(spec)
        job = Job(self._sequence, spec, policy, priority=priority)
        accepted, deduped = self.queue.submit(job)
        if deduped:
            self._deduped.inc()
            return accepted, True
        self._sequence += 1
        self._submitted.inc()
        self._pump()
        return job, False

    def cancel(self, job_id: str) -> Job:
        """Cancel a job (immediate when queued, at the next step boundary
        when running); the updated job."""
        job = self.queue.cancel(job_id)
        if job.state == "cancelled" and job.error is None:
            # Went terminal right here (it was still queued): account for
            # it and notify; running jobs settle in _run_job instead.
            job.error = "cancelled before it started"
            self._cancelled.inc()
            self._emit(job, state_frame(job))
            self._finish_stream(job)
        return job

    def get(self, job_id: str) -> Job:
        return self.queue.get(job_id)

    # ------------------------------------------------------------------
    # Streaming (loop thread only)
    # ------------------------------------------------------------------
    def subscribe(self, job: Job) -> "asyncio.Queue[dict | None]":
        """A frame queue for ``job``: history replayed, then live frames.

        Frames already emitted (a deduped late subscriber) are preloaded
        in order; ``None`` terminates the stream after the job's last
        frame.
        """
        stream: asyncio.Queue[dict | None] = asyncio.Queue()
        for frame in job.frames:
            stream.put_nowait(frame)
        if job.terminal:
            stream.put_nowait(None)
        else:
            self._subscribers.setdefault(job.job_id, []).append(stream)
        return stream

    def _emit(self, job: Job, frame: dict) -> None:
        job.frames.append(frame)
        for stream in self._subscribers.get(job.job_id, ()):
            stream.put_nowait(frame)

    def _finish_stream(self, job: Job) -> None:
        for stream in self._subscribers.pop(job.job_id, ()):
            stream.put_nowait(None)

    # ------------------------------------------------------------------
    # Scheduling (loop thread only)
    # ------------------------------------------------------------------
    def _pump(self) -> None:
        """Start queued jobs while capacity remains."""
        while True:
            job = self.queue.next_ready()
            if job is None:
                return
            task = asyncio.get_running_loop().create_task(self._run_job(job))
            self._tasks.add(task)
            task.add_done_callback(self._tasks.discard)

    def _take_chaos(self) -> int | None:
        armed = self._chaos_kill_shard
        self._chaos_kill_shard = None
        return armed

    async def _run_job(self, job: Job) -> None:
        """Execute one claimed job (already ``running``) to a terminal state."""
        loop = asyncio.get_running_loop()
        self._emit(job, state_frame(job))
        chaos = self._take_chaos()
        pool: WorkerPool | None = None
        try:
            compiled = compile_scenario(job.spec)
            pool = WorkerPool(
                job.policy.n_workers,
                worker_runner_factory(job.policy, self.cache, self.metrics),
                metrics=self.metrics,
            )
            runner = ShardingRunner(
                job.policy,
                pool=pool,
                cache=self.cache,
                obs=self.obs,
                metrics=self.metrics,
                chaos_kill_shard=chaos,
            )
            session = Session(runner=runner)
            steps: list[StepResult] = []
            for index, compiled_step in enumerate(compiled.steps):
                if job.cancel_requested:
                    job.error = f"cancelled after {index} step(s)"
                    job.advance("cancelled")
                    self._cancelled.inc()
                    self._emit(job, state_frame(job))
                    self._emit(job, error_frame(job.error, job_id=job.job_id))
                    return
                step = await loop.run_in_executor(
                    None, self._execute_step, session, compiled_step
                )
                steps.append(step)
                if job.state == "running":
                    job.advance("streaming")
                    self._emit(job, state_frame(job))
                self._emit(job, step_frame(job.job_id, index, step))
            result = ScenarioResult(
                scenario=job.spec.name,
                backend=session.runner.backend,
                steps=tuple(steps),
            )
            job.scenario_result = result
            job.advance("done")
            self._completed.inc()
            self._emit(job, state_frame(job))
            self._emit(job, result_frame(job.job_id, result))
        except ReproError as error:
            job.error = str(error)
            job.advance("failed")
            self._failed.inc()
            self._emit(job, state_frame(job))
            self._emit(job, error_frame(job.error, job_id=job.job_id))
        finally:
            if pool is not None:
                await loop.run_in_executor(None, pool.close)
            self.queue.finish(job)
            self._finish_stream(job)
            self._pump()

    def _execute_step(
        self, session: Session, compiled: CompiledStep
    ) -> StepResult:
        """One step, on an executor thread (its span is a thread root)."""
        with self.obs.span(
            compiled.step.name,
            kind="service.step",
            exact={"step_kind": compiled.step.kind, "n_jobs": compiled.n_jobs},
        ) as span:
            step = compiled.execute(session)
            span.annotate(headline=step.headline())
        return step

    # ------------------------------------------------------------------
    # Introspection and lifecycle
    # ------------------------------------------------------------------
    def status(self) -> dict:
        """A canonical-JSON-ready health snapshot.

        Queue depths by state, calibration-cache accounting, and the
        full service metric registry — the payload behind the ``status``
        endpoint and ``repro serve --status``.
        """
        return {
            "jobs": self.queue.depths(),
            "n_running": self.queue.n_running,
            "max_running": self.queue.max_running,
            "cache": {
                "entries": len(self.cache),
                "hits": self.cache.hits,
                "misses": self.cache.misses,
                "evictions": self.cache.evictions,
                "hit_rate": self.cache.hit_rate,
            },
            "metrics": self.metrics.snapshot(),
        }

    async def drain(self) -> None:
        """Wait until every started job reaches a terminal state."""
        while self._tasks:
            await asyncio.gather(*list(self._tasks), return_exceptions=True)

    async def run_scenario(
        self,
        spec: "ScenarioSpec",
        policy: ExecutionPolicy | None = None,
        priority: int = 0,
    ) -> ScenarioResult:
        """Submit and await one scenario — the one-call in-process client."""
        job = self.submit(spec, policy=policy, priority=priority)
        return await job.result()
