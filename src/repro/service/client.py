"""The reference client: blocking socket calls against an analyzer server.

:class:`ServiceClient` is the thin synchronous counterpart of
:class:`~repro.service.server.AnalyzerServer` — plain stdlib sockets, one
connection per call, newline-delimited canonical JSON.  It exists so a
test program (or a CI job) can drive the service without touching
asyncio:

    client = ServiceClient(port=server_port)
    result = client.run_scenario(spec, policy)     # a ScenarioResult
    for frame in client.stream(spec):              # or frame by frame
        print(frame["type"])

:meth:`ServiceClient.run_scenario` reassembles the streamed frames into
the same :class:`~repro.scenarios.result.ScenarioResult` a synchronous
:meth:`~repro.api.session.Session.run_scenario` returns — byte-identical
under :func:`~repro.reporting.export.baseline_to_json`; a terminal
``error`` frame raises :class:`~repro.errors.ServiceError` with the
server's message.
"""

from __future__ import annotations

import json
import socket
from typing import TYPE_CHECKING, Iterator

from ..errors import ConfigError, ServiceError
from .server import DEFAULT_HOST
from .wire import (
    cancel_request,
    encode_request,
    parse_frame,
    result_from_frames,
    result_request,
    status_request,
    submit_request,
)

if TYPE_CHECKING:
    from ..api.policy import ExecutionPolicy
    from ..scenarios.result import ScenarioResult
    from ..scenarios.spec import ScenarioSpec

#: Frame types that end a submit/result stream.
_TERMINAL_FRAMES = ("result", "error")


class ServiceClient:
    """Blocking client for one analyzer server endpoint.

    ``timeout`` bounds every socket operation (connect and each line
    read); it must cover the longest *step*, not the whole job, because
    the server streams a frame per step.
    """

    def __init__(
        self,
        port: int,
        host: str = DEFAULT_HOST,
        timeout: float = 300.0,
    ) -> None:
        if not isinstance(port, int) or isinstance(port, bool) or port < 1:
            raise ConfigError(
                f"client: port must be an integer >= 1, got {port!r}"
            )
        if not (isinstance(timeout, (int, float)) and timeout > 0):
            raise ConfigError(
                f"client: timeout must be a positive number, got {timeout!r}"
            )
        self.host = host
        self.port = port
        self.timeout = float(timeout)

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _exchange(self, request: dict) -> Iterator[dict]:
        """Send one request; yield frames until the stream terminates."""
        with socket.create_connection(
            (self.host, self.port), timeout=self.timeout
        ) as sock:
            with sock.makefile("rwb") as wire:
                wire.write(encode_request(request).encode("utf-8") + b"\n")
                wire.flush()
                while True:
                    line = wire.readline()
                    if not line:
                        return  # server closed the connection
                    try:
                        frame = parse_frame(json.loads(line.decode("utf-8")))
                    except json.JSONDecodeError as exc:
                        raise ServiceError(
                            f"server sent a non-JSON line: {exc}"
                        ) from exc
                    yield frame
                    if frame["type"] in _TERMINAL_FRAMES:
                        return

    def _one_frame(self, request: dict) -> dict:
        """Send one request; exactly one reply frame (status/cancel ops)."""
        for frame in self._exchange(request):
            if frame["type"] == "error":
                raise ServiceError(frame["message"])
            return frame
        raise ServiceError("server closed the stream without a reply")

    @staticmethod
    def _reassemble(frames: list[dict]) -> "ScenarioResult":
        for frame in frames:
            if frame["type"] == "error":
                job_id = frame.get("job_id")
                where = f"job {job_id}: " if job_id else ""
                raise ServiceError(f"{where}{frame['message']}")
        if not frames:
            raise ServiceError("server closed the stream without any frames")
        return result_from_frames(frames)

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def run_scenario(
        self,
        spec: "ScenarioSpec",
        policy: "ExecutionPolicy | None" = None,
        priority: int = 0,
    ) -> "ScenarioResult":
        """Submit a scenario and block for its reassembled result."""
        frames = list(self.stream(spec, policy=policy, priority=priority))
        return self._reassemble(frames)

    def stream(
        self,
        spec: "ScenarioSpec",
        policy: "ExecutionPolicy | None" = None,
        priority: int = 0,
    ) -> Iterator[dict]:
        """Submit a scenario; yield its frames live (ack first)."""
        request = submit_request(spec, policy=policy, priority=priority)
        return self._exchange(request)

    def result(self, job_id: str) -> "ScenarioResult":
        """Fetch (and block for) an already-submitted job's result."""
        frames = list(self._exchange(result_request(job_id)))
        return self._reassemble(frames)

    def status(self) -> dict:
        """The service's health snapshot (queue depths, cache, metrics)."""
        return self._one_frame(status_request())["status"]

    def cancel(self, job_id: str) -> dict:
        """Request cancellation; the server's state frame for the job."""
        return self._one_frame(cancel_request(job_id))
