"""The TCP front end: newline-delimited canonical JSON over asyncio.

:class:`AnalyzerServer` binds an :class:`~repro.service.service.AnalyzerService`
to a localhost socket.  The protocol is deliberately minimal — one
request line in, a stream of frame lines out (see
:mod:`repro.service.wire`) — so any language with a socket and a JSON
parser can drive the analyzer; :class:`~repro.service.client.ServiceClient`
is the reference Python implementation.

Connections are line-oriented and persistent: a client may issue several
requests on one connection, each answered by its complete frame stream
before the next request is read.  A ``submit`` streams the job live —
``ack``, then every ``state``/``step`` frame as the scheduler emits it,
down to the terminal ``result`` or ``error`` frame.  Malformed requests
answer with a single ``error`` frame naming the offending field and
leave the connection open.
"""

from __future__ import annotations

import asyncio
import json
from typing import Callable

from ..errors import ConfigError, ServiceError
from .jobs import Job
from .service import AnalyzerService
from .wire import (
    Request,
    ack_frame,
    encode_frame,
    error_frame,
    parse_request,
    state_frame,
    status_frame,
)

#: Default bind host — the service is a lab-bench tool, not an
#: internet-facing one; bind a specific interface explicitly to share it.
DEFAULT_HOST = "127.0.0.1"


class AnalyzerServer:
    """Serve an :class:`AnalyzerService` over a line-oriented socket.

    ``port=0`` (the default) binds an ephemeral port; read :attr:`port`
    after :meth:`start` to learn the actual one — the pattern the tests
    and the in-process examples use.
    """

    def __init__(
        self,
        service: AnalyzerService,
        host: str = DEFAULT_HOST,
        port: int = 0,
    ) -> None:
        if not isinstance(port, int) or isinstance(port, bool) or port < 0:
            raise ConfigError(
                f"server: port must be an integer >= 0, got {port!r}"
            )
        self.service = service
        self.host = host
        self._requested_port = port
        self._server: asyncio.AbstractServer | None = None

    @property
    def port(self) -> int:
        """The bound port (after :meth:`start`)."""
        if self._server is None:
            raise ServiceError("server is not started")
        sockets = self._server.sockets
        return int(sockets[0].getsockname()[1])

    async def start(self) -> "AnalyzerServer":
        if self._server is not None:
            raise ServiceError("server is already started")
        self._server = await asyncio.start_server(
            self._handle, host=self.host, port=self._requested_port
        )
        return self

    async def aclose(self) -> None:
        """Stop accepting connections and wait for started jobs."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.service.drain()

    async def __aenter__(self) -> "AnalyzerServer":
        return await self.start()

    async def __aexit__(self, *exc_info: object) -> None:
        await self.aclose()

    async def serve_forever(self) -> None:
        """Block serving requests until cancelled (the CLI entry point)."""
        if self._server is None:
            await self.start()
        server = self._server
        if server is None:  # pragma: no cover - narrowed for the typechecker
            raise ServiceError("server failed to start")
        async with server:
            await server.serve_forever()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    return
                if not line.strip():
                    continue
                try:
                    request = parse_request(json.loads(line.decode("utf-8")))
                except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                    await self._send(
                        writer, error_frame(f"request is not valid JSON: {exc}")
                    )
                    continue
                except ConfigError as exc:
                    await self._send(writer, error_frame(str(exc)))
                    continue
                try:
                    await self._dispatch(writer, request)
                except (ConfigError, ServiceError) as exc:
                    await self._send(writer, error_frame(str(exc)))
        except (ConnectionResetError, BrokenPipeError):
            return  # client went away mid-stream; the job keeps running
        finally:
            writer.close()

    async def _dispatch(
        self, writer: asyncio.StreamWriter, request: Request
    ) -> None:
        if request.op == "submit":
            if request.spec is None:  # pragma: no cover - parse guarantees it
                raise ConfigError("submit request: missing scenario")
            job, deduped = self.service.submit_job(
                request.spec, policy=request.policy, priority=request.priority
            )
            await self._send(writer, ack_frame(job, deduped))
            await self._stream_job(writer, job)
            return
        if request.op == "status":
            await self._send(writer, status_frame(self.service.status()))
            return
        if request.op == "cancel":
            job = self.service.cancel(str(request.job_id))
            await self._send(writer, state_frame(job))
            return
        # op == "result": replay the job's full frame history once it
        # settles — enough for the client to reassemble (or to see the
        # terminal error frame).
        job = self.service.get(str(request.job_id))
        await self._settle(job)
        for frame in job.frames:
            await self._send(writer, frame)

    async def _stream_job(
        self, writer: asyncio.StreamWriter, job: Job
    ) -> None:
        """Forward the job's frames (history, then live) to one client."""
        stream = self.service.subscribe(job)
        while True:
            frame = await stream.get()
            if frame is None:
                return
            await self._send(writer, frame)

    @staticmethod
    async def _settle(job: Job) -> None:
        """Wait for a terminal state without raising on failure."""
        try:
            await job.result()
        except ServiceError:
            return

    @staticmethod
    async def _send(writer: asyncio.StreamWriter, frame: dict) -> None:
        await _write_line(writer, encode_frame(frame))


async def _write_line(writer: asyncio.StreamWriter, line: str) -> None:
    writer.write(line.encode("utf-8") + b"\n")
    await writer.drain()


async def serve(
    host: str = DEFAULT_HOST,
    port: int = 0,
    *,
    max_running: int = 2,
    announce: Callable[[str, int], None] | None = None,
) -> None:
    """Boot a service and serve it until cancelled (``repro serve``).

    ``announce(host, port)`` is called once the socket is bound — the CLI
    prints the endpoint there, and tests learn the ephemeral port.
    """
    server = AnalyzerServer(
        AnalyzerService(max_running=max_running), host=host, port=port
    )
    await server.start()
    if announce is not None:
        announce(server.host, server.port)
    try:
        await server.serve_forever()
    finally:
        await server.aclose()
