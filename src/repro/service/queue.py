"""The job queue: priorities, bounded concurrency, in-flight dedupe.

:class:`JobQueue` is a plain synchronous data structure — deliberately
free of any asyncio machinery so it can be unit-tested exhaustively.
The :class:`~repro.service.service.AnalyzerService` scheduler drives it
from the event-loop thread.

Scheduling order is deterministic: higher ``priority`` first, FIFO by
submission sequence within a priority (a max-heap keyed on
``(-priority, sequence)``).  Capacity is bounded — at most
``max_running`` jobs execute concurrently; the rest wait ``queued``.

Dedupe is by content: a submission whose ``(spec_key, policy_key)``
matches an *in-flight* (queued/running/streaming) job returns that
existing job instead of enqueueing duplicate work — both clients then
stream the same frames.  Finished jobs never dedupe (a re-run after
completion is a legitimate fresh request).
"""

from __future__ import annotations

import heapq

from ..errors import ConfigError, ServiceError
from .jobs import JOB_STATES, Job


class JobQueue:
    """Priority scheduling with bounded concurrency and content dedupe."""

    def __init__(self, max_running: int = 1) -> None:
        if (
            not isinstance(max_running, int)
            or isinstance(max_running, bool)
            or max_running < 1
        ):
            raise ConfigError(
                f"queue: max_running must be an integer >= 1, "
                f"got {max_running!r}"
            )
        self.max_running = max_running
        #: Max-heap of (-priority, sequence, job); cancelled entries are
        #: skipped lazily on pop.
        self._heap: list[tuple[int, int, Job]] = []
        self._running: dict[str, Job] = {}
        self._jobs: dict[str, Job] = {}
        self._in_flight: dict[tuple[str, str], Job] = {}

    # ------------------------------------------------------------------
    # Intake
    # ------------------------------------------------------------------
    def submit(self, job: Job) -> tuple[Job, bool]:
        """Enqueue ``job`` (or return the in-flight duplicate).

        Returns ``(job, deduped)``: when an in-flight job already covers
        the same ``(spec_key, policy_key)`` content, that existing job
        comes back with ``deduped=True`` and the submission is dropped.
        """
        existing = self._in_flight.get(job.dedupe_key)
        if existing is not None and not existing.terminal:
            return existing, True
        if job.job_id in self._jobs:
            raise ServiceError(f"job {job.job_id} was already submitted")
        self._jobs[job.job_id] = job
        self._in_flight[job.dedupe_key] = job
        heapq.heappush(self._heap, (-job.priority, job.sequence, job))
        return job, False

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def next_ready(self) -> Job | None:
        """Claim the next runnable job, or None (empty or at capacity).

        The claimed job is advanced to ``running`` and counted against
        ``max_running`` until :meth:`finish` releases it.
        """
        if len(self._running) >= self.max_running:
            return None
        while self._heap:
            _, _, job = heapq.heappop(self._heap)
            if job.state != "queued":
                continue  # cancelled while waiting; lazily dropped
            job.advance("running")
            self._running[job.job_id] = job
            return job
        return None

    def finish(self, job: Job) -> None:
        """Release a terminal job's capacity and dedupe slot."""
        if not job.terminal:
            raise ServiceError(
                f"job {job.job_id} is {job.state!r}; only terminal jobs "
                f"can be finished"
            )
        self._running.pop(job.job_id, None)
        if self._in_flight.get(job.dedupe_key) is job:
            del self._in_flight[job.dedupe_key]

    # ------------------------------------------------------------------
    # Control and introspection
    # ------------------------------------------------------------------
    def get(self, job_id: str) -> Job:
        job = self._jobs.get(job_id)
        if job is None:
            raise ServiceError(f"unknown job id {job_id!r}")
        return job

    def cancel(self, job_id: str) -> Job:
        """Cancel a job: immediately when queued, cooperatively when running.

        A queued job goes terminal here; a running/streaming job gets
        its ``cancel_requested`` flag set and the executing scheduler
        stops at the next step boundary.  Cancelling a terminal job is a
        no-op.
        """
        job = self.get(job_id)
        job.cancel_requested = True
        if job.state == "queued":
            job.advance("cancelled")
            self.finish(job)
        return job

    @property
    def n_running(self) -> int:
        return len(self._running)

    def depths(self) -> dict[str, int]:
        """Job counts by state, every state present (zeros included)."""
        counts = {state: 0 for state in JOB_STATES}
        for job in self._jobs.values():
            counts[job.state] += 1
        return counts

    def __len__(self) -> int:
        return len(self._jobs)
