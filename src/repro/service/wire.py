"""The service wire format: canonical-JSON requests and result frames.

Everything that crosses the service boundary is one line of *compact
canonical JSON* (:func:`repro.reporting.export.compact_canonical_json`):
sorted keys, no whitespace, strict floats.  Two tagged formats:

* ``repro-service-request`` — what a client sends.  Four operations:
  ``submit`` (a scenario spec, an optional execution policy and a
  priority), ``status``, ``cancel`` and ``result``.
* ``repro-service-frame`` — what the service emits.  A submitted job
  streams ``ack`` → ``state``/``step`` frames → one terminal ``result``
  or ``error`` frame; ``status`` requests get a single ``status`` frame.

Frames are *self-describing and replayable*: a client that saw every
``step`` frame plus the ``result`` frame can reassemble the full
:class:`~repro.scenarios.result.ScenarioResult` with
:func:`result_from_frames` — byte-identical (under
:func:`~repro.reporting.export.baseline_to_json`) to what a synchronous
:meth:`~repro.api.session.Session.run_scenario` returns.  That identity
is the streaming contract, pinned by golden JSONL baselines under
``tests/baselines/service/``.

Malformed payloads are rejected with :class:`~repro.errors.ConfigError`
messages that name the offending field — the same validation style as
:func:`~repro.api.policy.policy_from_payload`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from ..errors import ConfigError
from ..reporting.export import compact_canonical_json
from ..scenarios.result import ScenarioResult, StepResult

if TYPE_CHECKING:
    from ..api.policy import ExecutionPolicy
    from ..scenarios.spec import ScenarioSpec
    from .jobs import Job

REQUEST_FORMAT = "repro-service-request"
REQUEST_VERSION = 1

FRAME_FORMAT = "repro-service-frame"
FRAME_VERSION = 1

#: Every operation a request may carry.
REQUEST_OPS = ("submit", "status", "cancel", "result")

#: Every frame type the service emits.
FRAME_TYPES = ("ack", "state", "step", "result", "error", "status")


def _header(kind: str) -> dict:
    fmt = REQUEST_FORMAT if kind == "request" else FRAME_FORMAT
    version = REQUEST_VERSION if kind == "request" else FRAME_VERSION
    return {"format": fmt, "version": version}


# ----------------------------------------------------------------------
# Request builders
# ----------------------------------------------------------------------

def submit_request(
    spec: "ScenarioSpec",
    policy: "ExecutionPolicy | None" = None,
    priority: int = 0,
) -> dict:
    """A ``submit`` request payload for ``spec`` (and optional policy)."""
    from ..api.policy import policy_to_payload
    from ..scenarios.spec import scenario_to_payload

    payload = _header("request")
    payload["op"] = "submit"
    payload["scenario"] = scenario_to_payload(spec)
    payload["policy"] = None if policy is None else policy_to_payload(policy)
    payload["priority"] = priority
    return payload


def status_request() -> dict:
    payload = _header("request")
    payload["op"] = "status"
    return payload


def cancel_request(job_id: str) -> dict:
    payload = _header("request")
    payload["op"] = "cancel"
    payload["job_id"] = job_id
    return payload


def result_request(job_id: str) -> dict:
    payload = _header("request")
    payload["op"] = "result"
    payload["job_id"] = job_id
    return payload


@dataclass(frozen=True)
class Request:
    """A validated, decoded client request."""

    op: str
    spec: "ScenarioSpec | None" = None
    policy: "ExecutionPolicy | None" = None
    priority: int = 0
    job_id: str | None = None


def parse_request(payload: Any) -> Request:
    """Validate and decode a request payload (strict, field-naming)."""
    from ..api.policy import policy_from_payload
    from ..scenarios.spec import scenario_from_payload

    if not isinstance(payload, dict):
        raise ConfigError(
            f"request: expected a JSON object, got {type(payload).__name__}"
        )
    if payload.get("format") != REQUEST_FORMAT:
        raise ConfigError(
            f"request: not a service request (expected format "
            f"{REQUEST_FORMAT!r}, got {payload.get('format')!r})"
        )
    if payload.get("version") != REQUEST_VERSION:
        raise ConfigError(
            f"request: unsupported version {payload.get('version')!r}; "
            f"this build speaks version {REQUEST_VERSION}"
        )
    op = payload.get("op")
    if op not in REQUEST_OPS:
        raise ConfigError(
            f"request: unknown op {op!r}; expected one of {REQUEST_OPS}"
        )
    if op == "submit":
        allowed = {"format", "version", "op", "scenario", "policy", "priority"}
        unknown = sorted(set(payload) - allowed)
        if unknown:
            raise ConfigError(f"submit request: unknown field(s) {unknown}")
        if "scenario" not in payload:
            raise ConfigError("submit request: missing field 'scenario'")
        spec = scenario_from_payload(payload["scenario"])
        policy_payload = payload.get("policy")
        policy = (
            None if policy_payload is None
            else policy_from_payload(policy_payload)
        )
        priority = payload.get("priority", 0)
        if not isinstance(priority, int) or isinstance(priority, bool):
            raise ConfigError(
                f"submit request: priority must be an integer, "
                f"got {priority!r}"
            )
        return Request(op="submit", spec=spec, policy=policy, priority=priority)
    if op == "status":
        return Request(op="status")
    # cancel / result both address a job by id
    job_id = payload.get("job_id")
    if not isinstance(job_id, str) or not job_id:
        raise ConfigError(
            f"{op} request: job_id must be a non-empty string, got {job_id!r}"
        )
    return Request(op=op, job_id=job_id)


# ----------------------------------------------------------------------
# Frame builders
# ----------------------------------------------------------------------

def ack_frame(job: "Job", deduped: bool) -> dict:
    """The first frame of every submission: the job's identity."""
    frame = _header("frame")
    frame.update(
        type="ack",
        job_id=job.job_id,
        state=job.state,
        deduped=deduped,
        spec_key=job.spec_key,
        policy_key=job.policy_key,
        priority=job.priority,
    )
    return frame


def state_frame(job: "Job") -> dict:
    """A lifecycle transition (queued → running → streaming → ...)."""
    frame = _header("frame")
    frame.update(type="state", job_id=job.job_id, state=job.state)
    return frame


def step_frame(job_id: str, index: int, step: StepResult) -> dict:
    """One completed scenario step, streamed as soon as it finishes."""
    frame = _header("frame")
    frame.update(
        type="step",
        job_id=job_id,
        index=index,
        step={
            "kind": step.kind,
            "name": step.name,
            "exact": step.exact,
            "floats": step.floats,
        },
    )
    return frame


def result_frame(job_id: str, result: ScenarioResult) -> dict:
    """The terminal success frame: result metadata (steps already sent)."""
    frame = _header("frame")
    frame.update(
        type="result",
        job_id=job_id,
        scenario=result.scenario,
        backend=result.backend,
        n_steps=len(result.steps),
        tolerance={"rel": result.rel_tol, "abs": result.abs_tol},
    )
    return frame


def error_frame(message: str, job_id: str | None = None) -> dict:
    """The terminal failure frame (job failure or malformed request)."""
    frame = _header("frame")
    frame.update(type="error", job_id=job_id, message=message)
    return frame


def status_frame(status: dict) -> dict:
    """A service-health snapshot (queue depths, cache stats, metrics)."""
    frame = _header("frame")
    frame.update(type="status", status=status)
    return frame


# ----------------------------------------------------------------------
# Encoding and decoding
# ----------------------------------------------------------------------

def encode_frame(frame: dict) -> str:
    """One wire line (no trailing newline) for a frame payload."""
    if frame.get("format") != FRAME_FORMAT:
        raise ConfigError(
            f"encode_frame: not a service frame: {frame.get('format')!r}"
        )
    return compact_canonical_json(frame)


def encode_request(request: dict) -> str:
    """One wire line (no trailing newline) for a request payload."""
    if request.get("format") != REQUEST_FORMAT:
        raise ConfigError(
            f"encode_request: not a service request: {request.get('format')!r}"
        )
    return compact_canonical_json(request)


def parse_frame(payload: Any) -> dict:
    """Validate a frame payload; the (unmodified) frame dict.

    Shallow structural validation — enough for a client to dispatch on
    ``type`` safely; deep reassembly checks live in
    :func:`result_from_frames`.
    """
    if not isinstance(payload, dict):
        raise ConfigError(
            f"frame: expected a JSON object, got {type(payload).__name__}"
        )
    if payload.get("format") != FRAME_FORMAT:
        raise ConfigError(
            f"frame: not a service frame (expected format {FRAME_FORMAT!r}, "
            f"got {payload.get('format')!r})"
        )
    if payload.get("version") != FRAME_VERSION:
        raise ConfigError(
            f"frame: unsupported version {payload.get('version')!r}; "
            f"this build speaks version {FRAME_VERSION}"
        )
    kind = payload.get("type")
    if kind not in FRAME_TYPES:
        raise ConfigError(
            f"frame: unknown type {kind!r}; expected one of {FRAME_TYPES}"
        )
    required = {
        "ack": ("job_id", "state", "deduped", "spec_key", "policy_key"),
        "state": ("job_id", "state"),
        "step": ("job_id", "index", "step"),
        "result": ("job_id", "scenario", "backend", "n_steps", "tolerance"),
        "error": ("message",),
        "status": ("status",),
    }[kind]
    missing = sorted(field for field in required if field not in payload)
    if missing:
        raise ConfigError(f"{kind} frame: missing field(s) {missing}")
    return payload


def result_from_frames(frames: list[dict]) -> ScenarioResult:
    """Reassemble a :class:`ScenarioResult` from a job's streamed frames.

    Requires the ``step`` frames (contiguous indices from 0) and the
    terminal ``result`` frame; other frame types are ignored.  The
    reassembled result is byte-identical — under
    :func:`~repro.reporting.export.baseline_to_json` — to the result a
    synchronous run of the same job produces.
    """
    steps: dict[int, StepResult] = {}
    tail: dict | None = None
    for frame in frames:
        frame = parse_frame(frame)
        if frame["type"] == "step":
            index = frame["index"]
            if not isinstance(index, int) or isinstance(index, bool):
                raise ConfigError(
                    f"step frame: index must be an integer, got {index!r}"
                )
            if index in steps:
                raise ConfigError(f"step frame: duplicate index {index}")
            step = frame["step"]
            try:
                steps[index] = StepResult(
                    kind=step["kind"],
                    name=step["name"],
                    exact=step["exact"],
                    floats=step["floats"],
                )
            except (KeyError, TypeError) as exc:
                raise ConfigError(
                    f"step frame {index}: malformed step payload: {exc}"
                ) from exc
        elif frame["type"] == "result":
            if tail is not None:
                raise ConfigError("stream carries more than one result frame")
            tail = frame
    if tail is None:
        raise ConfigError(
            "stream has no result frame; the job did not finish 'done'"
        )
    n_steps = tail["n_steps"]
    if sorted(steps) != list(range(n_steps)):
        raise ConfigError(
            f"stream is missing step frames: result declares {n_steps} "
            f"step(s), stream carries indices {sorted(steps)}"
        )
    try:
        tolerance = tail["tolerance"]
        return ScenarioResult(
            scenario=str(tail["scenario"]),
            backend=str(tail["backend"]),
            steps=tuple(steps[i] for i in range(n_steps)),
            rel_tol=float(tolerance["rel"]),
            abs_tol=float(tolerance["abs"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ConfigError(
            f"result frame: malformed field: {exc}"
        ) from exc
