"""Lot sharding: bit-identical fan-out with fault-tolerant workers.

The engine already made sharding *safe*: per-job seed substreams are
indexed by each job's **absolute** lot position
(:mod:`repro.engine.seeding`), so a population batch produces the same
numbers no matter where it is split or who executes the pieces.  This
module turns that property into a service-side scheduler:

* :func:`plan_shards` splits a batch of ``n`` jobs into ``chunk_size``
  shards — the *same* boundaries the engine's own chunk loop would use,
  so a sharded run slices the lot exactly like a synchronous chunked
  run.
* :class:`WorkerPool` executes shard tasks on worker threads, each
  owning a serial :class:`~repro.engine.runner.BatchRunner` on the
  service's shared :class:`~repro.engine.cache.CalibrationCache`.  A
  worker that dies (:class:`WorkerDied`) takes nothing with it: the
  pool re-enqueues the dead worker's shard, spawns a replacement
  thread, and the retry re-derives the same absolute-index substreams —
  the re-run is bit-identical.  Deaths and retries are counted in the
  pool's :class:`~repro.obs.MetricRegistry`
  (``service.worker_deaths`` / ``service.retries``).
* :class:`ShardingRunner` is a :class:`~repro.engine.runner.BatchRunner`
  whose population workloads (sweeps, fault campaigns, pseudorandom
  campaigns) dispatch their shard slices to a pool instead of looping
  inline.  Because it *is* a runner, a
  :class:`~repro.api.session.Session` adopts it unchanged and every
  workload above it — scenario compilation, channel lowering, baseline
  recording — is reused verbatim; byte-identity to the synchronous path
  follows from identical slices, identical calibration (one shared
  cache key) and identical absolute ``start_index`` offsets.

Monte-Carlo yield lots are the one population that cannot shard at this
level: their component draws come *serially* from one seeded RNG in
device order (see :meth:`~repro.engine.runner.BatchRunner.run_trials`),
so they run on the inherited engine path — chunked, but in-process.
Distortion batches (a handful of frequencies, never chunked) do too.
"""

from __future__ import annotations

import queue
import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Sequence

from ..engine.runner import BatchRunner
from ..errors import ConfigError, ServiceError
from ..obs.metrics import MetricRegistry

if TYPE_CHECKING:
    from ..api.policy import ExecutionPolicy
    from ..core.calibration import CalibrationResult
    from ..core.config import AnalyzerConfig
    from ..core.measurement import GainPhaseMeasurement
    from ..dut.base import DUT
    from ..engine.cache import CalibrationCache

#: A shard task: runs on a worker thread against that worker's runner.
ShardTask = Callable[[BatchRunner], Any]


class WorkerDied(ServiceError):
    """A worker thread died mid-shard (injected or real).

    Raising this inside a shard task makes the executing worker thread
    genuinely exit; the pool detects the death, re-enqueues the shard
    and spawns a replacement thread.
    """


@dataclass(frozen=True)
class Shard:
    """One contiguous slice of a population batch."""

    index: int
    start: int
    stop: int

    def __post_init__(self) -> None:
        if self.index < 0 or self.start < 0 or self.stop <= self.start:
            raise ConfigError(
                f"shard: need index >= 0 and 0 <= start < stop, got "
                f"index={self.index}, start={self.start}, stop={self.stop}"
            )

    @property
    def n_jobs(self) -> int:
        return self.stop - self.start


def plan_shards(n: int, chunk_size: int | None) -> list[Shard]:
    """Split ``n`` jobs into ``chunk_size`` shards.

    Mirrors the engine's own chunk boundaries
    (:meth:`~repro.engine.runner.BatchRunner._chunk_bounds`) exactly, so
    a sharded dispatch slices the lot the same way a synchronous chunked
    run does — which is what makes the two byte-identical, not merely
    equivalent.
    """
    if not isinstance(n, int) or isinstance(n, bool) or n < 1:
        raise ConfigError(f"plan_shards: n must be an integer >= 1, got {n!r}")
    if chunk_size is not None and (
        not isinstance(chunk_size, int)
        or isinstance(chunk_size, bool)
        or chunk_size < 1
    ):
        raise ConfigError(
            f"plan_shards: chunk_size must be an integer >= 1 or None, "
            f"got {chunk_size!r}"
        )
    if chunk_size is None or chunk_size >= n:
        return [Shard(index=0, start=0, stop=n)]
    return [
        Shard(index=k, start=start, stop=min(start + chunk_size, n))
        for k, start in enumerate(range(0, n, chunk_size))
    ]


class _ResultCell:
    """One shard's completion slot: survives worker death and retry."""

    def __init__(self) -> None:
        self._event = threading.Event()
        self._value: Any = None
        self._error: BaseException | None = None

    def fulfil(self, value: Any) -> None:
        self._value = value
        self._event.set()

    def fail(self, error: BaseException) -> None:
        self._error = error
        self._event.set()

    @property
    def pending(self) -> bool:
        return not self._event.is_set()

    def wait(self) -> Any:
        self._event.wait()
        if self._error is not None:
            raise self._error
        return self._value


#: Sentinel telling a worker thread to exit cleanly.
_STOP: Any = object()

_WorkItem = tuple[ShardTask, "_ResultCell", int]


class WorkerPool:
    """Thread workers, each owning a serial runner on one shared cache.

    Parameters
    ----------
    n_workers:
        Worker threads.  Threads (not processes) because the vectorized
        backend releases the GIL inside its NumPy kernels and — more
        importantly — because every worker must share *one*
        :class:`~repro.engine.cache.CalibrationCache` instance so a
        calibration acquired for shard 0 is a hit for shard 1.
    runner_factory:
        Builds each worker's private serial
        :class:`~repro.engine.runner.BatchRunner` (typically
        ``policy.replace(n_workers=1, chunk_size=None).build_runner(
        cache=shared_cache)``).
    metrics:
        Registry for ``service.worker_deaths`` / ``service.retries``; a
        private one is created when omitted.
    max_retries:
        How many times one shard may be re-enqueued after worker deaths
        before the pool gives up and fails the shard with a
        :class:`~repro.errors.ServiceError`.
    """

    _lock_guarded = ("_threads", "_closed")

    def __init__(
        self,
        n_workers: int,
        runner_factory: Callable[[], BatchRunner],
        *,
        metrics: MetricRegistry | None = None,
        max_retries: int = 2,
    ) -> None:
        if (
            not isinstance(n_workers, int)
            or isinstance(n_workers, bool)
            or n_workers < 1
        ):
            raise ConfigError(
                f"pool: n_workers must be an integer >= 1, got {n_workers!r}"
            )
        if not isinstance(max_retries, int) or max_retries < 0:
            raise ConfigError(
                f"pool: max_retries must be an integer >= 0, "
                f"got {max_retries!r}"
            )
        self.n_workers = n_workers
        self.max_retries = max_retries
        self.metrics = metrics if metrics is not None else MetricRegistry()
        self._deaths = self.metrics.counter("service.worker_deaths")
        self._retries = self.metrics.counter("service.retries")
        self._runner_factory = runner_factory
        self._tasks: queue.Queue[Any] = queue.Queue()
        self._lock = threading.Lock()
        self._threads: list[threading.Thread] = []
        self._closed = False
        for _ in range(n_workers):
            self._spawn()

    # ------------------------------------------------------------------
    # Worker lifecycle
    # ------------------------------------------------------------------
    def _spawn(self) -> None:
        thread = threading.Thread(target=self._worker_loop, daemon=True)
        with self._lock:
            if self._closed:
                return
            self._threads.append(thread)
        thread.start()

    def _worker_loop(self) -> None:
        runner = self._runner_factory()
        try:
            while True:
                item = self._tasks.get()
                if item is _STOP:
                    return
                task, cell, attempt = item
                try:
                    cell.fulfil(task(runner))
                except WorkerDied as death:
                    # The whole point: this thread genuinely exits.  The
                    # shard is re-enqueued and a replacement spawned; the
                    # retry re-derives the same absolute-index substreams,
                    # so the re-run is bit-identical.
                    self._on_death(task, cell, attempt, death)
                    return
                except Exception as error:  # noqa: BLE001 — fail the shard, not the pool
                    cell.fail(error)
        finally:
            runner.close()

    def _on_death(
        self,
        task: ShardTask,
        cell: "_ResultCell",
        attempt: int,
        death: WorkerDied,
    ) -> None:
        self._deaths.inc()
        if attempt >= self.max_retries:
            cell.fail(
                ServiceError(
                    f"shard failed after {attempt + 1} attempt(s) "
                    f"({self.max_retries} retries allowed): {death}"
                )
            )
            return
        self._retries.inc()
        self._tasks.put((task, cell, attempt + 1))
        self._spawn()

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def run_all(self, tasks: Sequence[ShardTask]) -> list[Any]:
        """Execute every task; results in task order.

        Blocks until all tasks complete (including any death-triggered
        retries); raises the first failure after all cells settle.
        """
        with self._lock:
            if self._closed:
                raise ServiceError("worker pool is closed")
        cells = [_ResultCell() for _ in tasks]
        for task, cell in zip(tasks, cells):
            self._tasks.put((task, cell, 0))
        return [cell.wait() for cell in cells]

    @property
    def worker_deaths(self) -> int:
        return self._deaths.value

    @property
    def retries(self) -> int:
        return self._retries.value

    def close(self) -> None:
        """Stop every worker (idempotent); pending tasks drain first."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            threads = list(self._threads)
        for _ in threads:
            self._tasks.put(_STOP)
        for thread in threads:
            thread.join()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class ShardingRunner(BatchRunner):
    """A runner whose population batches fan out over a worker pool.

    Drop-in for :class:`~repro.engine.runner.BatchRunner` behind a
    :class:`~repro.api.session.Session`: sweeps, fault campaigns and
    pseudorandom campaigns are split into ``policy.chunk_size`` shards
    (the engine's own chunk boundaries) and executed by pool workers
    with absolute ``start_index`` offsets; everything else — yield lots
    (serial RNG draws), distortion (never chunked), calibration — runs
    on the inherited in-process path.  With ``pool=None`` it *is* a
    plain runner.

    ``chaos_kill_shard=k`` arms a deterministic fault injection: the
    ``k``-th shard task to start execution (1-based, counted across the
    runner's lifetime) raises :class:`WorkerDied` instead of running,
    killing its worker thread.  The pool's retry then proves the
    bit-identity contract under real mid-job failure.
    """

    def __init__(
        self,
        policy: "ExecutionPolicy",
        *,
        pool: WorkerPool | None = None,
        cache: "CalibrationCache | None" = None,
        obs: Any = None,
        metrics: MetricRegistry | None = None,
        chaos_kill_shard: int | None = None,
    ) -> None:
        if chaos_kill_shard is not None and (
            not isinstance(chaos_kill_shard, int)
            or isinstance(chaos_kill_shard, bool)
            or chaos_kill_shard < 1
        ):
            raise ConfigError(
                f"chaos_kill_shard must be an integer >= 1 or None, "
                f"got {chaos_kill_shard!r}"
            )
        super().__init__(
            n_workers=1,  # in-process fallback paths stay serial
            cache=(
                cache
                if cache is not None
                else policy.build_cache(obs=obs, metrics=metrics)
            ),
            backend=policy.backend,
            chunk_size=policy.chunk_size,
            obs=obs,
            metrics=metrics,
        )
        self.policy = policy
        self._pool = pool
        self._shard_counter = self.metrics.counter("service.shards")
        self._chaos_kill_shard = chaos_kill_shard
        self._chaos_lock = threading.Lock()
        self._tasks_started = 0

    # ------------------------------------------------------------------
    # Chaos injection
    # ------------------------------------------------------------------
    def _maybe_chaos(self) -> None:
        """Kill the armed shard task (runs on the worker thread)."""
        if self._chaos_kill_shard is None:
            return
        with self._chaos_lock:
            self._tasks_started += 1
            started = self._tasks_started
        if started == self._chaos_kill_shard:
            raise WorkerDied(
                f"chaos injection: shard task #{started} killed its worker"
            )

    # ------------------------------------------------------------------
    # Shard dispatch
    # ------------------------------------------------------------------
    def _run_sharded(
        self,
        workload: str,
        n: int,
        task_for_shard: Callable[[Shard], ShardTask],
    ) -> list[Any]:
        pool = self._pool
        if pool is None:
            raise ServiceError("sharded dispatch requires a worker pool")
        shards = plan_shards(n, self.chunk_size)
        hits0, misses0 = self.cache.hits, self.cache.misses
        with self.obs.span(
            "service.shard_map",
            kind="service.shard",
            exact={
                "workload": workload,
                "n_jobs": n,
                "n_shards": len(shards),
                "chunk_size": self.chunk_size,
            },
        ) as span:
            shard_results = pool.run_all(
                [task_for_shard(shard) for shard in shards]
            )
            self._shard_counter.inc(len(shards))
            results = [
                result
                for shard_result in shard_results
                for result in shard_result
            ]
            span.annotate(n_results=len(results))
            span.annotate_timing(n_workers=pool.n_workers)
        self._last_effective_workers = min(pool.n_workers, len(shards))
        self._record(n, hits0, misses0, backend=self.backend)
        return results

    # ------------------------------------------------------------------
    # Sharded population workloads
    # ------------------------------------------------------------------
    def run_sweep(
        self,
        dut: "DUT",
        config: "AnalyzerConfig",
        frequencies: Any,
        m_periods: int | None = None,
        calibration: "CalibrationResult | None" = None,
        calibration_fwave: float | None = None,
        start_index: int = 0,
    ) -> "list[GainPhaseMeasurement]":
        if self._pool is None:
            return super().run_sweep(
                dut, config, frequencies,
                m_periods=m_periods,
                calibration=calibration,
                calibration_fwave=calibration_fwave,
                start_index=start_index,
            )
        points = [float(f) for f in frequencies]
        if not points:
            raise ConfigError("frequency list is empty")
        # Every shard must calibrate at the FULL sweep's anchor — each
        # slice's own first frequency would differ per shard and break
        # byte-identity with the synchronous path.
        fcal = (
            calibration_fwave if calibration_fwave is not None else points[0]
        )

        def task_for(shard: Shard) -> ShardTask:
            def task(runner: BatchRunner) -> Any:
                self._maybe_chaos()
                return runner.run_sweep(
                    dut,
                    config,
                    points[shard.start:shard.stop],
                    m_periods=m_periods,
                    calibration=calibration,
                    calibration_fwave=fcal,
                    start_index=start_index + shard.start,
                )

            return task

        return self._run_sharded("sweep", len(points), task_for)

    def run_fault_trials(
        self,
        duts: Any,
        config: "AnalyzerConfig",
        frequencies: Any,
        m_periods: int | None = None,
        calibration_fwave: float | None = None,
        start_index: int = 0,
    ) -> "list[tuple[GainPhaseMeasurement, ...]]":
        if self._pool is None:
            return super().run_fault_trials(
                duts, config, frequencies,
                m_periods=m_periods,
                calibration_fwave=calibration_fwave,
                start_index=start_index,
            )
        devices = list(duts)
        if not devices:
            raise ConfigError("DUT list is empty")
        probes = tuple(float(f) for f in frequencies)
        if not probes:
            raise ConfigError("frequency list is empty")
        fcal = (
            calibration_fwave if calibration_fwave is not None else probes[0]
        )

        def task_for(shard: Shard) -> ShardTask:
            def task(runner: BatchRunner) -> Any:
                self._maybe_chaos()
                return runner.run_fault_trials(
                    devices[shard.start:shard.stop],
                    config,
                    probes,
                    m_periods=m_periods,
                    calibration_fwave=fcal,
                    start_index=start_index + shard.start,
                )

            return task

        return self._run_sharded("fault_trials", len(devices), task_for)

    def run_pseudorandom_trials(
        self,
        duts: Any,
        config: "AnalyzerConfig",
        frequencies: Any,
        misr: Any,
        m_periods: int | None = None,
        calibration_fwave: float | None = None,
        start_index: int = 0,
    ) -> list[Any]:
        if self._pool is None:
            return super().run_pseudorandom_trials(
                duts, config, frequencies, misr,
                m_periods=m_periods,
                calibration_fwave=calibration_fwave,
                start_index=start_index,
            )
        devices = list(duts)
        if not devices:
            raise ConfigError("DUT list is empty")
        tones = tuple(float(f) for f in frequencies)
        if not tones:
            raise ConfigError("frequency list is empty")
        fcal = (
            calibration_fwave if calibration_fwave is not None else tones[0]
        )

        def task_for(shard: Shard) -> ShardTask:
            def task(runner: BatchRunner) -> Any:
                self._maybe_chaos()
                return runner.run_pseudorandom_trials(
                    devices[shard.start:shard.stop],
                    config,
                    tones,
                    misr,
                    m_periods=m_periods,
                    calibration_fwave=fcal,
                    start_index=start_index + shard.start,
                )

            return task

        return self._run_sharded(
            "pseudorandom_trials", len(devices), task_for
        )


def worker_runner_factory(
    policy: "ExecutionPolicy",
    cache: "CalibrationCache",
    metrics: MetricRegistry | None = None,
) -> Callable[[], BatchRunner]:
    """The factory pool workers build their private runners with.

    Each worker runner is serial (``n_workers=1``) and unchunked — a
    shard is already one chunk — but keeps the job policy's backend and
    shares the service-wide calibration cache and metric registry.
    """
    worker_policy = policy.replace(n_workers=1, chunk_size=None)

    def build() -> BatchRunner:
        return worker_policy.build_runner(cache=cache, metrics=metrics)

    return build
