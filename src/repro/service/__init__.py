"""repro.service — async analyzer-as-a-service on top of repro.api.

The service layer turns the one-process :class:`~repro.api.session.Session`
facade into a long-running analyzer endpoint:

* :class:`AnalyzerService` — an asyncio job scheduler: priority queue,
  bounded concurrency, in-flight content dedupe, per-step streaming,
  and fault-tolerant lot sharding over a worker pool
  (:class:`ShardingRunner` / :class:`WorkerPool`).
* :class:`AnalyzerServer` / :class:`ServiceClient` — a newline-delimited
  canonical-JSON protocol over a localhost socket
  (:mod:`repro.service.wire`), and its blocking reference client.
* The determinism contract carries through unbroken: shard slices are
  the engine's own chunk boundaries, seed substreams are indexed by
  absolute lot position, and a worker death replays its shard
  bit-identically — a streamed result reassembles byte-identical to a
  synchronous :meth:`~repro.api.session.Session.run_scenario`.

This package and :mod:`repro.engine` are the only modules allowed to
construct job queues and worker pools (lint rule REP002): everything
else submits work through :class:`AnalyzerService`.
"""

from .client import ServiceClient
from .jobs import JOB_STATES, TERMINAL_STATES, Job, job_id_for
from .queue import JobQueue
from .server import AnalyzerServer, serve
from .service import AnalyzerService, policy_for_spec
from .sharding import (
    Shard,
    ShardingRunner,
    WorkerDied,
    WorkerPool,
    plan_shards,
    worker_runner_factory,
)
from .wire import (
    FRAME_FORMAT,
    FRAME_TYPES,
    FRAME_VERSION,
    REQUEST_FORMAT,
    REQUEST_OPS,
    REQUEST_VERSION,
    Request,
    ack_frame,
    cancel_request,
    encode_frame,
    encode_request,
    error_frame,
    parse_frame,
    parse_request,
    result_frame,
    result_from_frames,
    result_request,
    state_frame,
    status_frame,
    status_request,
    step_frame,
    submit_request,
)

__all__ = [
    "AnalyzerServer",
    "AnalyzerService",
    "FRAME_FORMAT",
    "FRAME_TYPES",
    "FRAME_VERSION",
    "JOB_STATES",
    "Job",
    "JobQueue",
    "REQUEST_FORMAT",
    "REQUEST_OPS",
    "REQUEST_VERSION",
    "Request",
    "ServiceClient",
    "Shard",
    "ShardingRunner",
    "TERMINAL_STATES",
    "WorkerDied",
    "WorkerPool",
    "ack_frame",
    "cancel_request",
    "encode_frame",
    "encode_request",
    "error_frame",
    "job_id_for",
    "parse_frame",
    "parse_request",
    "plan_shards",
    "policy_for_spec",
    "result_frame",
    "result_from_frames",
    "result_request",
    "serve",
    "state_frame",
    "status_frame",
    "status_request",
    "step_frame",
    "submit_request",
    "worker_runner_factory",
]
