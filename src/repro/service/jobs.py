"""The service job model: typed states and deterministic identity.

A :class:`Job` is one submitted scenario plus the
:class:`~repro.api.policy.ExecutionPolicy` it runs under.  Its lifecycle
is a small explicit state machine::

    queued ──▶ running ──▶ streaming ──▶ done
       │          │            │
       │          ├──────────▶ failed
       └──────────┴──────────▶ cancelled

``queued`` jobs wait for scheduler capacity; ``running`` jobs are
executing their first step; ``streaming`` jobs have emitted at least one
:class:`~repro.scenarios.result.StepResult` frame to subscribers;
``done``/``failed``/``cancelled`` are terminal.  Every transition is
validated — an illegal one is a bug in the scheduler, reported as a
:class:`~repro.errors.ServiceError` rather than silently corrupting
accounting.

Identity is deterministic: job ids derive from a monotonic submission
sequence (``job-000042``), never from clocks or random UUIDs — the
service obeys the same REP001 determinism contract as the engine.  The
``(spec_key, policy_key)`` content-hash pair (see
:meth:`~repro.scenarios.spec.ScenarioSpec.spec_key`) identifies
byte-identical work for in-flight dedupe.
"""

from __future__ import annotations

import asyncio
from typing import TYPE_CHECKING

from ..errors import ConfigError, ServiceError

if TYPE_CHECKING:
    from ..api.policy import ExecutionPolicy
    from ..scenarios.result import ScenarioResult
    from ..scenarios.spec import ScenarioSpec

#: Every state a job can be in, in lifecycle order.
JOB_STATES = ("queued", "running", "streaming", "done", "failed", "cancelled")

#: States a job never leaves.
TERMINAL_STATES = ("done", "failed", "cancelled")

#: The legal state machine: state -> states it may advance to.
_TRANSITIONS: dict[str, tuple[str, ...]] = {
    "queued": ("running", "cancelled"),
    "running": ("streaming", "done", "failed", "cancelled"),
    "streaming": ("done", "failed", "cancelled"),
    "done": (),
    "failed": (),
    "cancelled": (),
}


def job_id_for(sequence: int) -> str:
    """The deterministic id of the ``sequence``-th submitted job."""
    if not isinstance(sequence, int) or isinstance(sequence, bool) or sequence < 0:
        raise ConfigError(
            f"job: sequence must be an integer >= 0, got {sequence!r}"
        )
    return f"job-{sequence:06d}"


class Job:
    """One submitted scenario riding through the service lifecycle.

    Mutable by design — the scheduler advances its state — but only ever
    from the event-loop thread, so no lock is needed; worker threads
    communicate through the executor's return values.
    """

    def __init__(
        self,
        sequence: int,
        spec: "ScenarioSpec",
        policy: "ExecutionPolicy",
        priority: int = 0,
    ) -> None:
        if not isinstance(priority, int) or isinstance(priority, bool):
            raise ConfigError(
                f"job: priority must be an integer, got {priority!r}"
            )
        self.sequence = sequence
        self.job_id = job_id_for(sequence)
        self.spec = spec
        self.policy = policy
        self.priority = priority
        self.spec_key = spec.spec_key()
        self.policy_key = policy.policy_key()
        self.state: str = "queued"
        self.error: str | None = None
        self.scenario_result: "ScenarioResult | None" = None
        self.cancel_requested = False
        #: Every frame emitted for this job, in order — late subscribers
        #: (a deduped resubmission) replay these before going live.
        self.frames: list[dict] = []
        self._done = asyncio.Event()

    @property
    def dedupe_key(self) -> tuple[str, str]:
        """Content identity: byte-identical work hashes identically."""
        return (self.spec_key, self.policy_key)

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def advance(self, state: str) -> None:
        """Move to ``state``, enforcing the lifecycle state machine."""
        if state not in JOB_STATES:
            raise ServiceError(
                f"job {self.job_id}: unknown state {state!r}; "
                f"valid states: {JOB_STATES}"
            )
        if state not in _TRANSITIONS[self.state]:
            raise ServiceError(
                f"job {self.job_id}: illegal transition "
                f"{self.state!r} -> {state!r}"
            )
        self.state = state
        if self.terminal:
            self._done.set()

    async def result(self) -> "ScenarioResult":
        """Block until the job finishes; the reassembled scenario result.

        Raises :class:`~repro.errors.ServiceError` if the job failed or
        was cancelled (carrying the recorded error message).
        """
        await self._done.wait()
        if self.state == "done" and self.scenario_result is not None:
            return self.scenario_result
        detail = f": {self.error}" if self.error else ""
        raise ServiceError(
            f"job {self.job_id} finished {self.state!r}, not 'done'{detail}"
        )

    def __repr__(self) -> str:
        return (
            f"Job({self.job_id}, scenario={self.spec.name!r}, "
            f"state={self.state!r}, priority={self.priority})"
        )
