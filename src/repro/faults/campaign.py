"""Fault campaigns: build a fault dictionary on the batch engine.

A campaign enumerates a fault catalog, injects each fault into the good
device, measures every faulty device's gain/phase signature at a plan of
probe frequencies, and collects the signatures into a
:class:`~repro.faults.dictionary.FaultDictionary`.

Campaigns are the fault workload the batch engine was built for:

* every (faulty) device is an independent
  :class:`~repro.engine.jobs.FaultTrialJob` with its own deterministic
  noise substream, so campaign results are bit-identical serial or
  parallel at any worker count;
* calibration is *fault-independent* — the bypass path never crosses
  the DUT — so the entire campaign pays for exactly one cached
  calibration acquisition, no matter how many faults it enumerates.
"""

from __future__ import annotations

from ..core.config import AnalyzerConfig
from ..dut.active_rc import ActiveRCLowpass
from ..errors import ConfigError
from .dictionary import (
    NOMINAL_LABEL,
    FaultDictionary,
    FaultSignature,
    signature_from_measurements,
)


def _plan_frequencies(frequencies) -> tuple[float, ...]:
    """Accept a FrequencySweepPlan or any iterable of frequencies."""
    plan_frequencies = getattr(frequencies, "frequencies", None)
    if callable(plan_frequencies):
        frequencies = plan_frequencies()
    result = tuple(float(f) for f in frequencies)
    if not result:
        raise ConfigError("probe frequency list is empty")
    if any(f <= 0 for f in result):
        raise ConfigError(f"probe frequencies must be positive, got {result}")
    if len(set(result)) != len(result):
        raise ConfigError(f"probe frequencies must be distinct, got {result}")
    return result


class FaultCampaign:
    """Measure a fault catalog into a dictionary.

    Parameters
    ----------
    good_dut:
        The fault-free device faults are injected into.
    faults:
        The catalog — any objects satisfying the
        :class:`~repro.dut.faults.Fault` protocol, with unique labels.
    frequencies:
        Probe frequencies: a :class:`~repro.core.sweep.FrequencySweepPlan`
        or an iterable of hertz values.
    config:
        Analyzer configuration (default: the ideal setup).
    m_periods:
        Evaluation window per probe point (default: the config's).
    """

    def __init__(
        self,
        good_dut: ActiveRCLowpass,
        faults,
        frequencies,
        config: AnalyzerConfig | None = None,
        m_periods: int | None = None,
    ) -> None:
        self.good_dut = good_dut
        self.faults = list(faults)
        if not self.faults:
            raise ConfigError("fault catalog is empty")
        labels = [f.label for f in self.faults]
        if len(set(labels)) != len(labels):
            duplicates = sorted({l for l in labels if labels.count(l) > 1})
            raise ConfigError(f"duplicate fault labels in catalog: {duplicates}")
        if NOMINAL_LABEL in labels:
            raise ConfigError(f"{NOMINAL_LABEL!r} is reserved for the good device")
        self.frequencies = _plan_frequencies(frequencies)
        self.config = config if config is not None else AnalyzerConfig.ideal()
        self.m_periods = m_periods

    @property
    def labels(self) -> tuple[str, ...]:
        return tuple(f.label for f in self.faults)

    def run(
        self,
        n_workers: int | None = None,  # repro: allow[REP002]: documented deprecation shim — forwards to Session.build_dictionary
        runner=None,
        nominal: FaultSignature | None = None,
        backend: str | None = None,  # repro: allow[REP002]: documented deprecation shim — forwards to Session.build_dictionary

        *,
        session=None,
    ) -> FaultDictionary:
        """Measure the whole catalog (plus the good device) once.

        The campaign executes on a :class:`~repro.api.session.Session`'s
        resources — pass one as ``session`` to share its calibration
        cache and worker pool across campaigns (and with every other
        workload the session runs).  The historical
        ``n_workers=``/``runner=``/``backend=`` kwargs are deprecated:
        they emit a :class:`DeprecationWarning` and forward to a
        one-shot session with bit-identical results.  A ``nominal``
        signature already measured on this campaign's probe grid (e.g.
        the fail-fast good-device check of
        :func:`repro.bist.coverage.fault_coverage`) is adopted instead
        of re-simulating the good device; the faulty devices keep the
        seed indices they would have had in the full batch, so the
        dictionary is bit-identical either way.
        """
        if session is not None:
            if n_workers is not None or backend is not None or runner is not None:
                raise ConfigError(
                    "FaultCampaign.run: pass either session= or the "
                    "deprecated n_workers=/backend=/runner= kwargs, not "
                    "both (the session's policy decides execution)"
                )
        else:
            from ..api.session import legacy_session

            session = legacy_session(
                "FaultCampaign.run",
                n_workers=n_workers,
                backend=backend,
                runner=runner,
            )
        engine = session.runner
        with session.obs.span(
            "faults.campaign",
            kind="campaign",
            exact={
                "n_faults": len(self.faults),
                "n_frequencies": len(self.frequencies),
                "adopted_nominal": nominal is not None,
            },
        ):
            if nominal is None:
                duts = [self.good_dut] + [
                    f.apply(self.good_dut) for f in self.faults
                ]
                results = engine.run_fault_trials(
                    duts, self.config, self.frequencies, m_periods=self.m_periods
                )
                nominal = signature_from_measurements(NOMINAL_LABEL, results[0])
                fault_results = results[1:]
            else:
                if nominal.frequencies != self.frequencies:
                    raise ConfigError(
                        f"nominal signature probes {nominal.frequencies}, the "
                        f"campaign {self.frequencies}"
                    )
                if nominal.label != NOMINAL_LABEL:
                    nominal = FaultSignature(NOMINAL_LABEL, nominal.points)
                fault_results = engine.run_fault_trials(
                    [f.apply(self.good_dut) for f in self.faults],
                    self.config,
                    self.frequencies,
                    m_periods=self.m_periods,
                    start_index=1,  # index 0 belongs to the (adopted) nominal
                )
            entries = tuple(
                signature_from_measurements(fault.label, measurements)
                for fault, measurements in zip(self.faults, fault_results)
            )
            return FaultDictionary(
                nominal=nominal, entries=entries, m_periods=self.m_periods
            )


def measure_signature(
    dut,
    frequencies,
    config: AnalyzerConfig | None = None,
    m_periods: int | None = None,
    label: str = "measured",
    runner=None,
    backend: str | None = None,  # repro: allow[REP002]: documented deprecation shim — forwards to a one-shot Session
    session=None,
) -> FaultSignature:
    """Measure one device's signature on the dictionary's probe grid.

    This is the *diagnosis-time* acquisition: the device under diagnosis
    goes through exactly the same engine path as the dictionary entries
    (same calibration economy, same per-job seeding scheme), so its
    signature is directly comparable.  Pass a
    :class:`~repro.api.session.Session` to reuse its cache and pool;
    the historical ``runner=``/``backend=`` kwargs are deprecated and
    forward to a one-shot session with bit-identical results.
    """
    if session is not None:
        if runner is not None or backend is not None:
            raise ConfigError(
                "measure_signature: pass either session= or the deprecated "
                "runner=/backend= kwargs, not both (the session's policy "
                "decides execution)"
            )
        engine = session.runner
    else:
        from ..api.session import legacy_session

        session = legacy_session(
            "measure_signature", backend=backend, runner=runner
        )
        engine = session.runner
    config = config if config is not None else AnalyzerConfig.ideal()
    with session.obs.span(
        "faults.measure_signature",
        kind="campaign",
        exact={"label": label},
    ):
        results = engine.run_fault_trials(
            [dut], config, _plan_frequencies(frequencies), m_periods=m_periods
        )
        return signature_from_measurements(label, results[0])
