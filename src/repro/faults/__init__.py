"""Fault dictionary & diagnosis: from pass/fail to *which component failed*.

The analyzer's BIST layer (:mod:`repro.bist`) decides pass/fail; this
subsystem answers the follow-up question a failing part raises on every
test floor — which fault explains the measured signature?  It is the
standard dictionary method of the analog-test literature, made honest by
this analyzer's guaranteed measurement intervals:

* :class:`~repro.faults.campaign.FaultCampaign` — enumerate a fault
  catalog and measure each faulty device's multi-frequency signature as
  batch-engine jobs (one shared cached calibration, bit-identical serial
  or parallel);
* :class:`~repro.faults.dictionary.FaultDictionary` — the stored
  interval-valued signatures, with detectability checks, ambiguity
  groups and JSON round-tripping
  (:func:`repro.reporting.export.dictionary_to_json`);
* :func:`~repro.faults.diagnose.diagnose` — interval-aware
  nearest-signature matching that reports ranked candidates *and* the
  ambiguity group instead of silently mis-ranking indistinguishable
  faults;
* :func:`~repro.faults.probes.select_probe_frequencies` — greedy
  selection of the most discriminating sweep points, so the production
  diagnosis program measures 3 frequencies instead of 30.

The fault models themselves (parametric deviations, catastrophic
shorts/opens, multi-component combinations) live in
:mod:`repro.dut.faults`; see ``README.md`` for the end-to-end flow and
``EXPERIMENTS.md`` for measured coverage and diagnosis-accuracy figures.
"""

from .campaign import FaultCampaign, measure_signature
from .dictionary import (
    NOMINAL_LABEL,
    FaultDictionary,
    FaultSignature,
    SignaturePoint,
    interval_gap,
    signature_from_measurements,
)
from .diagnose import Candidate, Diagnosis, diagnose
from .probes import select_probe_frequencies

__all__ = [
    "NOMINAL_LABEL",
    "Candidate",
    "Diagnosis",
    "FaultCampaign",
    "FaultDictionary",
    "FaultSignature",
    "SignaturePoint",
    "diagnose",
    "interval_gap",
    "measure_signature",
    "select_probe_frequencies",
    "signature_from_measurements",
]
