"""Probe-frequency selection: the fewest sweep points that diagnose.

Test time on a production floor is dominated by the number of measured
sweep points, so a diagnosis program wants the *most discriminating*
subset of a candidate plan, not the whole plan.  The dictionary already
knows, per frequency, which fault pairs a measurement there can tell
apart (their intervals are disjoint); selecting probes is then a
set-cover problem over fault pairs, solved greedily here (the classical
dictionary-compaction heuristic).

Build a dictionary on a dense candidate plan once, select, then
:meth:`~repro.faults.dictionary.FaultDictionary.restrict` — the
production program measures only the selected frequencies.
"""

from __future__ import annotations

from ..errors import ConfigError
from .dictionary import FaultDictionary, FaultSignature


def _pairs(signatures: list[FaultSignature]):
    for i, a in enumerate(signatures):
        for b in signatures[i + 1 :]:
            yield a, b


def pair_separation_at(
    a: FaultSignature, b: FaultSignature, point_index: int
) -> float:
    """Interval gap between two signatures at one probe point."""
    return a.points[point_index].gap(b.points[point_index])


def select_probe_frequencies(
    dictionary: FaultDictionary,
    n_probes: int,
    include_nominal: bool = True,
) -> tuple[float, ...]:
    """Greedily pick the most discriminating probe frequencies.

    Each round selects the frequency that separates the most not-yet-
    separated signature pairs (ties: the larger summed separation
    margin, then the lower frequency).  Once every separable pair is
    covered, remaining slots go to the frequencies with the largest
    total margin — redundancy that buys noise immunity rather than new
    coverage.  Pairs no candidate frequency separates are intrinsic
    ambiguity — no subset selection can resolve them.

    Returns the selected frequencies in ascending order.
    """
    frequencies = dictionary.frequencies
    if not 1 <= n_probes <= len(frequencies):
        raise ConfigError(
            f"n_probes must be in 1..{len(frequencies)}, got {n_probes}"
        )
    signatures = list(dictionary.entries)
    if include_nominal:
        signatures.append(dictionary.nominal)

    # Precompute, per frequency: which pairs it separates, with margins.
    pair_ids = {}
    separated_by: list[set[int]] = [set() for _ in frequencies]
    margin: list[float] = [0.0 for _ in frequencies]
    for a, b in _pairs(signatures):
        pair_id = pair_ids.setdefault((a.label, b.label), len(pair_ids))
        for i in range(len(frequencies)):
            gap = pair_separation_at(a, b, i)
            if gap > 0.0:
                separated_by[i].add(pair_id)
                margin[i] += gap

    chosen: list[int] = []
    covered: set[int] = set()
    remaining = set(range(len(frequencies)))
    while len(chosen) < n_probes and remaining:
        best = min(
            remaining,
            key=lambda i: (
                -len(separated_by[i] - covered),
                -margin[i],
                frequencies[i],
            ),
        )
        chosen.append(best)
        covered |= separated_by[best]
        remaining.remove(best)
    return tuple(sorted(frequencies[i] for i in chosen))
