"""Interval-aware nearest-signature diagnosis.

Given a measured signature and a fault dictionary, rank the candidate
faults (including the fault-free "nominal" hypothesis) by how far the
measurement's guaranteed intervals are from each stored signature.

Two distances drive the ranking:

* **separation** — the interval-gap norm
  (:meth:`~repro.faults.dictionary.FaultSignature.separation`).  A
  candidate with separation 0 is *consistent*: the guaranteed bounds
  cannot exclude it.  A candidate with separation > 0 is excluded by
  the measurement (provided the bounded-error model holds).
* **estimate distance** — the plain Euclidean distance between point
  estimates, used to order candidates the intervals cannot separate.

The honest output for overlapping candidates is the **ambiguity group**:
every consistent candidate is reported as indistinguishable rather than
silently ranked below the nearest one.  When *no* candidate is
consistent (a fault outside the dictionary, or bounds violated), the
group falls back to the dictionary's own ambiguity group of the nearest
candidate — the set a test engineer would investigate first.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError
from .dictionary import NOMINAL_LABEL, FaultDictionary, FaultSignature


@dataclass(frozen=True)
class Candidate:
    """One ranked diagnosis hypothesis."""

    label: str
    separation: float  # interval-gap norm; 0 = consistent with measurement
    estimate_distance: float  # point-estimate norm (tie-breaker)

    @property
    def consistent(self) -> bool:
        """True when the measurement's intervals cannot exclude this fault."""
        return self.separation == 0.0


@dataclass(frozen=True)
class Diagnosis:
    """Ranked candidates plus the honest ambiguity statement."""

    measured_label: str
    candidates: tuple[Candidate, ...]  # best first
    ambiguity_group: tuple[str, ...]  # labels indistinguishable at this probe plan

    @property
    def best(self) -> Candidate:
        return self.candidates[0]

    @property
    def consistent_labels(self) -> tuple[str, ...]:
        """All candidates the measurement cannot exclude, ranked."""
        return tuple(c.label for c in self.candidates if c.consistent)

    @property
    def conclusive(self) -> bool:
        """True when exactly one candidate survives the interval test."""
        return len(self.consistent_labels) == 1

    def names(self, label: str) -> bool:
        """True if the diagnosis points at ``label`` — as the single best
        candidate or as a member of the reported ambiguity group."""
        return label == self.best.label or label in self.ambiguity_group


def diagnose(
    measured: FaultSignature,
    dictionary: FaultDictionary,
    include_nominal: bool = True,
    top_n: int | None = None,
) -> Diagnosis:
    """Rank dictionary faults against a measured signature.

    Parameters
    ----------
    measured:
        The device-under-diagnosis signature, acquired on the
        dictionary's probe grid (see
        :func:`repro.faults.campaign.measure_signature`).
    dictionary:
        The fault dictionary to match against.
    include_nominal:
        Also rank the fault-free hypothesis (default) — a passing device
        then diagnoses as ``"nominal"`` instead of its nearest fault.
    top_n:
        Truncate the ranked candidate list (the ambiguity group is
        computed before truncation and may name faults beyond it).
    """
    if top_n is not None and top_n < 1:
        raise ConfigError(f"top_n must be >= 1, got {top_n}")
    hypotheses = list(dictionary.entries)
    if include_nominal:
        hypotheses.append(dictionary.nominal)

    candidates = sorted(
        (
            Candidate(
                label=entry.label,
                separation=measured.separation(entry),
                estimate_distance=measured.estimate_distance(entry),
            )
            for entry in hypotheses
        ),
        key=lambda c: (c.separation, c.estimate_distance, c.label),
    )

    consistent = tuple(c.label for c in candidates if c.consistent)
    if consistent:
        group = tuple(sorted(consistent))
    else:
        # Nothing fits the guaranteed bounds: report the dictionary's
        # own ambiguity neighbourhood of the nearest fault hypothesis.
        best = candidates[0].label
        group = (
            (NOMINAL_LABEL,) if best == NOMINAL_LABEL else dictionary.group_of(best)
        )

    if top_n is not None:
        candidates = candidates[:top_n]
    return Diagnosis(
        measured_label=measured.label,
        candidates=tuple(candidates),
        ambiguity_group=group,
    )
