"""Interval-valued fault signatures and the fault dictionary.

The classical fault-dictionary method: simulate every cataloged fault
once, store each fault's measured frequency-response *signature*, and
diagnose a failing device by matching its measured signature against the
stored ones.  Because this analyzer reports guaranteed intervals rather
than point estimates, the dictionary can be honest about a question the
classical method fumbles: *which faults are distinguishable at all*.
Two faults whose signature intervals overlap at every probe frequency
cannot be told apart by this measurement — they form an **ambiguity
group**, and a diagnosis reports the group instead of silently
mis-ranking its members.

Distance conventions: gains are compared in decibels and phases in
degrees, treated as commensurate display units (the standard pragmatic
choice for mixed gain/phase signature matching).  The *separation*
between two signatures is the Euclidean norm over probe points of the
interval gaps (zero wherever the intervals overlap), so separation 0
means "consistent — the measurement cannot exclude this fault".

Phase is an *angle*: its intervals live on the circle, not the line.
:func:`repro.intervals.atan2_interval` deliberately unwraps each
interval around its centre so the band stays contiguous, which means a
signature near the ``+/-180`` degree cut may be reported as
``[174, 186]`` by one acquisition and ``[-186, -174]`` by a physically
identical one.  All phase comparisons here therefore go through the
angular helpers (:func:`repro.intervals.angular_gap`,
:func:`repro.intervals.angular_distance`), which work modulo 360
degrees — overlap, detectability, ambiguity groups and diagnosis
ranking are invariant under any global phase rotation of the catalog.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ConfigError
from ..intervals import BoundedValue, angular_distance, angular_gap

#: Phase intervals are degrees on the circle: comparisons wrap at 360.
PHASE_PERIOD_DEG = 360.0

#: Label reserved for the fault-free device's signature.
NOMINAL_LABEL = "nominal"


def interval_gap(a: BoundedValue, b: BoundedValue) -> float:
    """Distance between two intervals (0 when they overlap)."""
    return max(0.0, max(a.lower, b.lower) - min(a.upper, b.upper))


@dataclass(frozen=True)
class SignaturePoint:
    """One probe frequency's bounded gain/phase reading."""

    frequency: float
    gain_db: BoundedValue
    phase_deg: BoundedValue

    def __post_init__(self) -> None:
        if not self.frequency > 0:
            raise ConfigError(f"frequency must be positive, got {self.frequency!r}")

    def gap(self, other: "SignaturePoint") -> float:
        """Euclidean gap between two readings (0 iff both overlap).

        The phase component is compared on the circle (modulo 360
        degrees), so two intervals on opposite sides of the ``+/-180``
        branch cut overlap when the underlying angles do.
        """
        return math.hypot(
            interval_gap(self.gain_db, other.gain_db),
            angular_gap(self.phase_deg, other.phase_deg, PHASE_PERIOD_DEG),
        )

    def estimate_distance(self, other: "SignaturePoint") -> float:
        """Euclidean distance between the point estimates.

        The phase term is the shortest angular distance, so the ranking
        tie-breaker is as rotation-invariant as the gap itself.
        """
        return math.hypot(
            self.gain_db.value - other.gain_db.value,
            angular_distance(
                self.phase_deg.value, other.phase_deg.value, PHASE_PERIOD_DEG
            ),
        )


@dataclass(frozen=True)
class FaultSignature:
    """A labelled multi-frequency gain/phase signature."""

    label: str
    points: tuple[SignaturePoint, ...]

    def __post_init__(self) -> None:
        points = tuple(self.points)
        object.__setattr__(self, "points", points)
        if not self.label:
            raise ConfigError("signature label must be non-empty")
        if not points:
            raise ConfigError("signature needs at least one probe point")

    @property
    def frequencies(self) -> tuple[float, ...]:
        return tuple(p.frequency for p in self.points)

    def _check_comparable(self, other: "FaultSignature") -> None:
        if self.frequencies != other.frequencies:
            raise ConfigError(
                f"signatures probe different frequencies: "
                f"{self.frequencies} vs {other.frequencies}"
            )

    def separation(self, other: "FaultSignature") -> float:
        """Guaranteed separation: 0 iff the signatures are consistent."""
        self._check_comparable(other)
        return math.sqrt(
            sum(a.gap(b) ** 2 for a, b in zip(self.points, other.points))
        )

    def overlaps(self, other: "FaultSignature") -> bool:
        """True when no probe frequency can tell the two apart."""
        return self.separation(other) == 0.0

    def estimate_distance(self, other: "FaultSignature") -> float:
        """Point-estimate distance (the ranking tie-breaker)."""
        self._check_comparable(other)
        return math.sqrt(
            sum(
                a.estimate_distance(b) ** 2
                for a, b in zip(self.points, other.points)
            )
        )

    def restrict(self, frequencies) -> "FaultSignature":
        """The signature cut down to a subset of its probe frequencies."""
        wanted = tuple(float(f) for f in frequencies)
        by_freq = {p.frequency: p for p in self.points}
        missing = [f for f in wanted if f not in by_freq]
        if missing:
            raise ConfigError(
                f"signature has no reading at {missing}; available: "
                f"{self.frequencies}"
            )
        return FaultSignature(
            label=self.label, points=tuple(by_freq[f] for f in wanted)
        )


def signature_from_measurements(label: str, measurements) -> FaultSignature:
    """Build a signature from analyzer gain/phase measurements."""
    points = tuple(
        SignaturePoint(
            frequency=m.fwave, gain_db=m.gain_db, phase_deg=m.phase_deg
        )
        for m in measurements
    )
    return FaultSignature(label=label, points=points)


@dataclass(frozen=True)
class FaultDictionary:
    """Nominal plus per-fault signatures on a common probe grid.

    Built by a :class:`~repro.faults.campaign.FaultCampaign`; serialized
    with :func:`repro.reporting.export.dictionary_to_json`.
    """

    nominal: FaultSignature
    entries: tuple[FaultSignature, ...]
    m_periods: int | None = None

    def __post_init__(self) -> None:
        entries = tuple(self.entries)
        object.__setattr__(self, "entries", entries)
        if not entries:
            raise ConfigError("dictionary needs at least one fault entry")
        labels = [e.label for e in entries]
        if len(set(labels)) != len(labels):
            duplicates = sorted({l for l in labels if labels.count(l) > 1})
            raise ConfigError(f"duplicate dictionary labels: {duplicates}")
        if NOMINAL_LABEL in labels:
            raise ConfigError(
                f"{NOMINAL_LABEL!r} is reserved for the fault-free signature"
            )
        for entry in entries:
            self.nominal._check_comparable(entry)

    # ------------------------------------------------------------------
    @property
    def frequencies(self) -> tuple[float, ...]:
        """The common probe grid."""
        return self.nominal.frequencies

    @property
    def labels(self) -> tuple[str, ...]:
        return tuple(e.label for e in self.entries)

    def entry(self, label: str) -> FaultSignature:
        if label == NOMINAL_LABEL:
            return self.nominal
        for entry in self.entries:
            if entry.label == label:
                return entry
        raise ConfigError(f"no dictionary entry {label!r}; have {self.labels}")

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)

    # ------------------------------------------------------------------
    # Detectability and ambiguity
    # ------------------------------------------------------------------
    def detectable(self, label: str) -> bool:
        """True when the fault's signature excludes the nominal one.

        An undetectable fault is a guaranteed test escape at this probe
        plan and window size — the knobs are more/better probe
        frequencies or a larger ``M``.
        """
        return not self.entry(label).overlaps(self.nominal)

    def ambiguity_groups(self) -> tuple[tuple[str, ...], ...]:
        """Partition of the fault labels into indistinguishability groups.

        Signature overlap is not transitive, so groups are the connected
        components of the pairwise-overlap graph: a diagnosis inside a
        component may not be able to single out one member.  Singleton
        groups are uniquely diagnosable faults.
        """
        labels = list(self.labels)
        adjacency = {label: set() for label in labels}
        for i, a in enumerate(self.entries):
            for b in self.entries[i + 1 :]:
                if a.overlaps(b):
                    adjacency[a.label].add(b.label)
                    adjacency[b.label].add(a.label)
        groups = []
        unseen = set(labels)
        for label in labels:  # catalog order keeps the output stable
            if label not in unseen:
                continue
            component = set()
            frontier = [label]
            while frontier:
                current = frontier.pop()
                if current in component:
                    continue
                component.add(current)
                frontier.extend(adjacency[current] - component)
            unseen -= component
            groups.append(tuple(sorted(component)))
        return tuple(groups)

    def group_of(self, label: str) -> tuple[str, ...]:
        """The ambiguity group containing a fault label."""
        self.entry(label)  # validates the label
        for group in self.ambiguity_groups():
            if label in group:
                return group
        raise ConfigError(f"no ambiguity group for {label!r}")  # pragma: no cover

    # ------------------------------------------------------------------
    def restrict(self, frequencies) -> "FaultDictionary":
        """The dictionary cut down to a probe-frequency subset.

        This is how a production diagnosis program is derived: build the
        dictionary on a dense candidate plan once, select the most
        discriminating probes (:func:`repro.faults.probes.select_probe_frequencies`),
        then restrict — the test floor only ever measures the subset.
        """
        return FaultDictionary(
            nominal=self.nominal.restrict(frequencies),
            entries=tuple(e.restrict(frequencies) for e in self.entries),
            m_periods=self.m_periods,
        )

    # ------------------------------------------------------------------
    # Serialization (see repro.reporting.export)
    # ------------------------------------------------------------------
    def to_json(self) -> str:
        """JSON text round-trippable via :meth:`from_json`."""
        from ..reporting.export import dictionary_to_json

        return dictionary_to_json(self)

    @classmethod
    def from_json(cls, text: str) -> "FaultDictionary":
        """Rebuild a dictionary serialized by :meth:`to_json`."""
        from ..reporting.export import dictionary_from_json

        return dictionary_from_json(text)
