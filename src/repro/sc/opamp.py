"""Behavioural operational amplifier model.

The paper uses one fully differential folded-cascode amplifier (Fig. 3) in
both the generator biquad and the sigma-delta integrator.  At the
sampled-data level the amplifier enters the system behaviour through a
small set of aggregate parameters, which is exactly what this model
captures:

* **Finite DC gain** ``A0``: the virtual ground sits at ``-vout/A0``
  instead of zero, which leaks charge — an SC integrator built on this
  amplifier becomes slightly lossy and its coefficient shrinks.
* **Input-referred offset**: adds a constant to every charge transfer; in
  the evaluator this is the offset the chopped signature counting cancels.
* **Incomplete settling**: with finite bandwidth/slew the output only
  covers a fraction ``1 - settling_error`` of each step.
* **Output saturation**: the output clips at ``+/-v_sat`` (the reason the
  paper fixes ``CI/CF = 0.4`` in the modulator: "to avoid saturation
  effects in the amplifier").
* **Input-referred noise**: white noise added per transfer, lumped with
  kT/C noise by the circuit models.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError


@dataclass(frozen=True)
class OpAmpModel:
    """Aggregate behavioural parameters of an SC amplifier.

    Parameters
    ----------
    dc_gain:
        Open-loop DC gain (linear, not dB).  ``float('inf')`` for ideal.
    offset:
        Input-referred offset voltage (volts).
    settling_error:
        Relative residual error per charge transfer (0 = complete
        settling).  Must lie in ``[0, 1)``.
    v_sat:
        Output saturation (volts); the differential output clips at
        ``+/- v_sat``.
    noise_rms:
        Input-referred noise per transfer (volts RMS).
    """

    dc_gain: float = float("inf")
    offset: float = 0.0
    settling_error: float = 0.0
    v_sat: float = float("inf")
    noise_rms: float = 0.0

    def __post_init__(self) -> None:
        if not self.dc_gain > 0:
            raise ConfigError(f"dc_gain must be positive, got {self.dc_gain!r}")
        if not 0.0 <= self.settling_error < 1.0:
            raise ConfigError(
                f"settling_error must be in [0, 1), got {self.settling_error!r}"
            )
        if not self.v_sat > 0:
            raise ConfigError(f"v_sat must be positive, got {self.v_sat!r}")
        if self.noise_rms < 0:
            raise ConfigError(f"noise_rms must be >= 0, got {self.noise_rms!r}")

    # ------------------------------------------------------------------
    # Convenience constructors
    # ------------------------------------------------------------------
    @classmethod
    def ideal(cls) -> "OpAmpModel":
        """A perfect amplifier (infinite gain, no offset/noise/clipping)."""
        return cls()

    @classmethod
    def folded_cascode_035um(
        cls,
        offset: float = 0.0,
        noise_rms: float = 30e-6,
        v_sat: float = 1.5,
    ) -> "OpAmpModel":
        """Typical folded-cascode figures for a 0.35 um CMOS process.

        DC gain around 70 dB, settling to well under 0.1 % within half a
        clock period at the paper's clock rates, +/-1.5 V differential
        swing on a 3.3 V supply, and tens of microvolts of sampled noise.
        These defaults make the generator's simulated SFDR/THD land in the
        neighbourhood the paper measured (~70 dB) without per-figure
        tuning.
        """
        return cls(
            dc_gain=10 ** (70.0 / 20.0),
            offset=offset,
            settling_error=2e-4,
            v_sat=v_sat,
            noise_rms=noise_rms,
        )

    @classmethod
    def from_gain_db(cls, gain_db: float, **kwargs) -> "OpAmpModel":
        """Build a model specifying the DC gain in dB."""
        return cls(dc_gain=10 ** (gain_db / 20.0), **kwargs)

    # ------------------------------------------------------------------
    # Behaviour
    # ------------------------------------------------------------------
    @property
    def gain_db(self) -> float:
        """Open-loop DC gain in dB."""
        if np.isinf(self.dc_gain):
            return float("inf")
        return float(20.0 * np.log10(self.dc_gain))

    @property
    def inverse_gain(self) -> float:
        """``1/A0`` — the virtual-ground error coefficient (0 when ideal)."""
        if np.isinf(self.dc_gain):
            return 0.0
        return 1.0 / self.dc_gain

    def saturate(self, v: float) -> float:
        """Clip an output voltage to the saturation range."""
        if v > self.v_sat:
            return self.v_sat
        if v < -self.v_sat:
            return -self.v_sat
        return v

    def settle(self, previous: float, target: float) -> float:
        """Output after one charge-transfer settling interval.

        Moves from ``previous`` toward ``target``, leaving the configured
        relative residue of the step uncovered.
        """
        return target - self.settling_error * (target - previous)

    def sample_noise(self, rng: np.random.Generator | None) -> float:
        """Draw one input-referred noise sample (0 if no rng or no noise)."""
        if rng is None or self.noise_rms == 0.0:
            return 0.0
        return float(rng.normal(0.0, self.noise_rms))
