"""z-domain analysis of linear sampled-data (SC) models.

Works on the state-space triple ``(M, b, c)`` of a discrete-time system
``x[n] = M x[n-1] + b u[n]``, ``y[n] = c . x[n]`` — the form produced by
:meth:`repro.sc.biquad.SCBiquad.state_matrices`.  Used to derive the
generator's design parameters (resonance frequency, quality factor,
passband gain) from the paper's Table I capacitors, and by tests to cross
check the time-domain simulation against the transfer function.
"""

from __future__ import annotations

import cmath
import math

import numpy as np

from ..errors import ConfigError


def poles(m: np.ndarray) -> np.ndarray:
    """Poles of the sampled-data system (eigenvalues of the state matrix)."""
    m = np.asarray(m, dtype=float)
    if m.ndim != 2 or m.shape[0] != m.shape[1]:
        raise ConfigError(f"state matrix must be square, got shape {m.shape}")
    return np.linalg.eigvals(m)


def continuous_equivalent(pole: complex, fclk: float) -> tuple[float, float]:
    """Map a z-plane pole to ``(f0, Q)`` via the matched-z transform.

    ``s = fclk * ln(z)``; the natural frequency is ``|s| / 2 pi`` and the
    quality factor ``-|s| / (2 Re s)``.  Real stable poles report their
    corner frequency and ``Q = 0.5``-style first-order behaviour.
    """
    if not fclk > 0:
        raise ConfigError(f"clock frequency must be positive, got {fclk!r}")
    z = complex(pole)
    if abs(z) == 0:
        raise ConfigError("pole at z = 0 has no continuous equivalent")
    s = cmath.log(z) * fclk
    omega0 = abs(s)
    f0 = omega0 / (2.0 * math.pi)
    if s.real == 0:
        return f0, math.inf
    q = -omega0 / (2.0 * s.real)
    return f0, q


def resonance(m: np.ndarray, fclk: float) -> tuple[float, float]:
    """``(f0, Q)`` of the dominant complex pole pair.

    Raises if the system has no complex poles (no resonance).
    """
    for pole in poles(m):
        if abs(pole.imag) > 1e-12:
            return continuous_equivalent(pole, fclk)
    raise ConfigError("system has no complex pole pair (no resonance)")


def is_stable(m: np.ndarray, margin: float = 0.0) -> bool:
    """True if all poles lie strictly inside the unit circle (minus margin)."""
    return bool(np.all(np.abs(poles(m)) < 1.0 - margin))


def frequency_response(
    m: np.ndarray, b: np.ndarray, c: np.ndarray, frequencies, fclk: float
) -> np.ndarray:
    """Complex response ``H(e^{j 2 pi f / fclk})`` at the given frequencies.

    ``H(z) = c . (I - M z^{-1})^{-1} b`` for the update convention
    ``x[n] = M x[n-1] + b u[n]`` (input acts without extra delay).
    """
    if not fclk > 0:
        raise ConfigError(f"clock frequency must be positive, got {fclk!r}")
    m = np.asarray(m, dtype=float)
    b = np.asarray(b, dtype=float).reshape(-1)
    c = np.asarray(c, dtype=float).reshape(-1)
    n = m.shape[0]
    if b.shape[0] != n or c.shape[0] != n:
        raise ConfigError("state-space dimensions are inconsistent")
    frequencies = np.atleast_1d(np.asarray(frequencies, dtype=float))
    out = np.empty(len(frequencies), dtype=complex)
    eye = np.eye(n)
    for i, f in enumerate(frequencies):
        zinv = cmath.exp(-2j * math.pi * f / fclk)
        out[i] = c @ np.linalg.solve(eye - m * zinv, b)
    return out


def dc_gain(m: np.ndarray, b: np.ndarray, c: np.ndarray) -> float:
    """Response at z = 1."""
    value = frequency_response(m, b, c, [0.0], fclk=1.0)[0]
    return float(value.real)


def peak_response(
    m: np.ndarray,
    b: np.ndarray,
    c: np.ndarray,
    fclk: float,
    n_grid: int = 4096,
) -> tuple[float, float]:
    """``(frequency, |H|)`` of the largest response magnitude on a grid.

    The grid covers DC to Nyquist; resolution is refined once around the
    coarse peak.
    """
    if n_grid < 16:
        raise ConfigError(f"n_grid must be >= 16, got {n_grid}")
    coarse = np.linspace(0.0, fclk / 2.0, n_grid)
    mag = np.abs(frequency_response(m, b, c, coarse, fclk))
    idx = int(np.argmax(mag))
    lo = coarse[max(idx - 1, 0)]
    hi = coarse[min(idx + 1, n_grid - 1)]
    fine = np.linspace(lo, hi, 256)
    mag_fine = np.abs(frequency_response(m, b, c, fine, fclk))
    j = int(np.argmax(mag_fine))
    return float(fine[j]), float(mag_fine[j])


def impulse_response(
    m: np.ndarray, b: np.ndarray, c: np.ndarray, n_samples: int
) -> np.ndarray:
    """Impulse response of the state-space model (for time-domain checks)."""
    if n_samples < 0:
        raise ConfigError(f"n_samples must be >= 0, got {n_samples}")
    m = np.asarray(m, dtype=float)
    b = np.asarray(b, dtype=float).reshape(-1)
    c = np.asarray(c, dtype=float).reshape(-1)
    x = np.zeros(m.shape[0])
    out = np.empty(n_samples)
    for i in range(n_samples):
        u = 1.0 if i == 0 else 0.0
        x = m @ x + b * u
        out[i] = c @ x
    return out
