"""Capacitor mismatch modelling.

Monolithic capacitor ratios set every coefficient of an SC circuit, and
their random mismatch is the dominant source of *in-band* harmonic
distortion in the fabricated generator: if the array weights
``CI_k = 2 sin(k pi/8)`` are realized with small relative errors, the
synthesized staircase is no longer an exactly sampled sine and low-order
harmonics appear.  Matching follows the Pelgrom area law: the relative
standard deviation scales as ``1/sqrt(C)`` (bigger capacitors match
better).

A :class:`MismatchModel` is a *seeded draw*: constructing one with the
same seed reproduces the same die.  Monte-Carlo experiments build many
models with different seeds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..errors import ConfigError


def pelgrom_sigma(c_normalized: float, sigma_unit: float) -> float:
    """Relative mismatch sigma for a capacitor of ``c_normalized`` units.

    ``sigma_unit`` is the relative sigma of a single unit capacitor; a
    capacitor made of ``c`` units averages their errors, giving
    ``sigma_unit / sqrt(c)``.
    """
    if not c_normalized > 0:
        raise ConfigError(f"capacitance must be positive, got {c_normalized!r}")
    if sigma_unit < 0:
        raise ConfigError(f"sigma_unit must be >= 0, got {sigma_unit!r}")
    return sigma_unit / math.sqrt(c_normalized)


@dataclass(frozen=True)
class MismatchModel:
    """A reproducible draw of capacitor mismatch for one simulated die.

    Parameters
    ----------
    sigma_unit:
        Relative 1-sigma mismatch of a unit capacitor.  0.001 (0.1 %) is a
        typical figure for the paper's 0.35 um poly-poly capacitors.
    seed:
        RNG seed identifying the die.  ``None`` draws a fresh die.
    """

    sigma_unit: float = 0.001
    seed: int | None = 0
    _rng: np.random.Generator = field(init=False, repr=False, compare=False, default=None)

    def __post_init__(self) -> None:
        if self.sigma_unit < 0:
            raise ConfigError(f"sigma_unit must be >= 0, got {self.sigma_unit!r}")
        object.__setattr__(self, "_rng", np.random.default_rng(self.seed))

    @classmethod
    def ideal(cls) -> "MismatchModel":
        """No mismatch at all (sigma 0)."""
        return cls(sigma_unit=0.0, seed=0)

    def perturb(self, c_normalized: float) -> float:
        """One mismatched capacitor value (normalized units).

        Draws are consumed from the model's RNG in call order, so a fixed
        construction order of circuit elements gives a reproducible die.
        """
        if not c_normalized > 0:
            raise ConfigError(f"capacitance must be positive, got {c_normalized!r}")
        if self.sigma_unit == 0.0:
            return float(c_normalized)
        sigma = pelgrom_sigma(c_normalized, self.sigma_unit)
        return float(c_normalized * (1.0 + self._rng.normal(0.0, sigma)))

    def perturb_many(self, values) -> np.ndarray:
        """Mismatch an array of capacitor values."""
        return np.array([self.perturb(v) for v in np.asarray(values, dtype=float)])
