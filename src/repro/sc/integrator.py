"""Parasitic-insensitive switched-capacitor integrator.

The basic SC building block: a sampling capacitor ``Cs`` ferries charge
onto an integration capacitor ``Cf`` once per clock period; an optional
switched damping capacitor ``Cl`` makes the integrator lossy.  Ideal
charge conservation gives::

    v[n] = lam * v[n-1] + s * (Cs / (Cf + Cl)) * vin[n],
    lam  = Cf / (Cf + Cl)

with ``s = -1`` for the inverting configuration.  Finite amplifier gain
``A0`` introduces the standard first-order errors (Temes): a gain error
``eps_g ~= (1 + Cs/Cf)/A0`` on the input coefficient and a pole leakage
``eps_p ~= (Cs/Cf)/A0`` on the memory term.  Offset, incomplete settling,
noise and saturation come from the :class:`~repro.sc.opamp.OpAmpModel`.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigError
from .opamp import OpAmpModel


class SCIntegrator:
    """A lossy/lossless SC integrator advanced one clock period at a time.

    Parameters
    ----------
    cs:
        Sampling (input) capacitor, normalized units.
    cf:
        Integration (feedback) capacitor, normalized units.
    cl:
        Switched damping capacitor (0 for a lossless integrator).
    inverting:
        If True (default, matching the single-amplifier SC stage), input
        charge subtracts from the output.
    opamp:
        Behavioural amplifier model.
    rng:
        Noise generator; ``None`` disables amplifier noise.
    """

    def __init__(
        self,
        cs: float,
        cf: float,
        cl: float = 0.0,
        inverting: bool = True,
        opamp: OpAmpModel | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        if not cs > 0:
            raise ConfigError(f"sampling capacitor must be positive, got {cs!r}")
        if not cf > 0:
            raise ConfigError(f"integration capacitor must be positive, got {cf!r}")
        if cl < 0:
            raise ConfigError(f"damping capacitor must be >= 0, got {cl!r}")
        self.cs = float(cs)
        self.cf = float(cf)
        self.cl = float(cl)
        self.sign = -1.0 if inverting else 1.0
        self.opamp = opamp if opamp is not None else OpAmpModel.ideal()
        self.rng = rng
        p = self.opamp.inverse_gain
        self._gain_error = p * (1.0 + self.cs / self.cf)
        self._pole_leak = p * (self.cs / self.cf)
        self._coeff = self.cs / (self.cf + self.cl)
        self._lam = self.cf / (self.cf + self.cl)
        self.v = 0.0

    # ------------------------------------------------------------------
    @property
    def coefficient(self) -> float:
        """Ideal per-step input coefficient ``Cs/(Cf+Cl)``."""
        return self._coeff

    @property
    def leak(self) -> float:
        """Ideal memory coefficient ``Cf/(Cf+Cl)`` (1 for lossless)."""
        return self._lam

    def reset(self, v: float = 0.0) -> None:
        """Reset the integrator state (power-up / autozero)."""
        self.v = float(v)

    def step(self, vin: float, extra_charge: float = 0.0) -> float:
        """Advance one clock period and return the new output voltage.

        ``extra_charge`` injects additional charge (normalized units of
        capacitance x volts) directly onto the summing node — used by
        composite circuits with several input branches.
        """
        disturbance = self.opamp.offset + self.opamp.sample_noise(self.rng)
        target = (
            self._lam * (1.0 - self._pole_leak) * self.v
            + self.sign * self._coeff * (1.0 - self._gain_error) * (vin + disturbance)
            + self.sign * extra_charge / (self.cf + self.cl)
        )
        settled = self.opamp.settle(self.v, target)
        self.v = self.opamp.saturate(settled)
        return self.v

    def run(self, vin: np.ndarray) -> np.ndarray:
        """Advance over a full input array, returning the output sequence."""
        vin = np.asarray(vin, dtype=float)
        out = np.empty(len(vin))
        for i, x in enumerate(vin):
            out[i] = self.step(float(x))
        return out

    def is_ideal(self) -> bool:
        """True when no non-ideality is active (fast paths may be used)."""
        amp = self.opamp
        return (
            amp.inverse_gain == 0.0
            and amp.offset == 0.0
            and amp.settling_error == 0.0
            and np.isinf(amp.v_sat)
            and (amp.noise_rms == 0.0 or self.rng is None)
        )
