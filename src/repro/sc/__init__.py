"""Behavioural switched-capacitor circuit substrate.

SC circuits are sampled-data systems: their first-order behaviour is a set
of charge-conservation difference equations advanced once per clock
period.  This package provides the behavioural models the generator and
evaluator are built from:

* :class:`~repro.sc.opamp.OpAmpModel` — finite DC gain, offset, settling
  error, saturation, input-referred noise (the knobs that matter for the
  folded-cascode amplifier of the paper's Fig. 3);
* :class:`~repro.sc.mismatch.MismatchModel` — Pelgrom-style random
  capacitor mismatch, the dominant source of in-band harmonic distortion
  in the fabricated generator;
* :mod:`~repro.sc.noise` — kT/C sampled noise;
* :class:`~repro.sc.integrator.SCIntegrator` — parasitic-insensitive
  (lossy) integrator;
* :class:`~repro.sc.biquad.SCBiquad` — the Fleischer-Laker-style
  two-integrator loop of the generator (paper Fig. 2a, Table I);
* :mod:`~repro.sc.analysis` — z-domain pole/frequency-response analysis
  of the linearized models.
"""

from .opamp import OpAmpModel
from .mismatch import MismatchModel, pelgrom_sigma
from .noise import ktc_noise_rms, sampled_ktc_noise
from .integrator import SCIntegrator
from .biquad import BiquadCapacitors, SCBiquad
from . import analysis

__all__ = [
    "OpAmpModel",
    "MismatchModel",
    "pelgrom_sigma",
    "ktc_noise_rms",
    "sampled_ktc_noise",
    "SCIntegrator",
    "BiquadCapacitors",
    "SCBiquad",
    "analysis",
]
