"""The generator's switched-capacitor biquad (paper Fig. 2a, Table I).

The sinewave generator is "a fully-differential biquad whose input
capacitors have been replaced by an array of four capacitors".  The paper
names its capacitors with the classic Fleischer-Laker letters (A, B, C, D,
F, plus the input ``Cin = CI(t)``), which identifies the topology as the
standard two-integrator loop with F-type (switched) damping on the second
integrator.  The exact switch phasing of the authors' companion paper is
not public; the phasing chosen here — lossless first integrator with a
delayed coupling from the loop, lossy second integrator with an undelayed
coupling — gives, with Table I values, a low-pass biquad whose
continuous-equivalent resonance sits at ``0.93 x (fgen/16)`` with
``Q ~= 1.1``: a passband centred on the synthesized tone, as the design
requires.  The assumption is documented in DESIGN.md and all analysis is
computed from the difference equations, so a different phasing would be a
one-line change.

Ideal charge-conservation difference equations (normalized capacitors,
``q[n]`` = input charge ``CI(t_n) * Vin``)::

    v1[n] = v1[n-1] - (A/B) * v2[n-1] - q[n]/B
    v2[n] = (D/(D+F)) * v2[n-1] + (C/(D+F)) * v1[n]

Non-idealities enter exactly as in :class:`~repro.sc.integrator.SCIntegrator`:
finite-gain leakage and gain error, offset, incomplete settling, output
saturation, amplifier noise, and (optionally) kT/C noise referred to the
unit capacitor size.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError
from .mismatch import MismatchModel
from .noise import ktc_noise_rms
from .opamp import OpAmpModel


@dataclass(frozen=True)
class BiquadCapacitors:
    """Normalized capacitor values of the Fleischer-Laker loop.

    Letters follow the paper's Table I.  ``e`` (E-type damping on the
    first integrator) is zero in the paper's design but supported for
    ablation studies.
    """

    a: float
    b: float
    c: float
    d: float
    f: float
    e: float = 0.0

    def __post_init__(self) -> None:
        for name in ("a", "b", "c", "d", "f", "e"):
            value = getattr(self, name)
            if name in ("e", "f"):
                if value < 0:
                    raise ConfigError(f"capacitor {name.upper()} must be >= 0, got {value!r}")
            elif not value > 0:
                raise ConfigError(f"capacitor {name.upper()} must be positive, got {value!r}")

    def mismatched(self, mismatch: MismatchModel) -> "BiquadCapacitors":
        """A mismatched copy of this capacitor set (one simulated die)."""
        values = {}
        for name in ("a", "b", "c", "d", "f", "e"):
            value = getattr(self, name)
            values[name] = mismatch.perturb(value) if value > 0 else value
        return BiquadCapacitors(**values)


class SCBiquad:
    """Two-integrator SC loop driven by an input charge sequence.

    Parameters
    ----------
    caps:
        Normalized capacitor values (already mismatched if desired).
    opamp1, opamp2:
        Behavioural models for the two amplifiers.  The paper reuses the
        same folded-cascode design for both.
    rng:
        Noise generator shared by both amplifiers; ``None`` disables noise.
    unit_capacitance:
        Physical size of the unit capacitor in farads; when given, kT/C
        noise for each charge transfer is added on top of amplifier noise.
    """

    def __init__(
        self,
        caps: BiquadCapacitors,
        opamp1: OpAmpModel | None = None,
        opamp2: OpAmpModel | None = None,
        rng: np.random.Generator | None = None,
        unit_capacitance: float | None = None,
    ) -> None:
        self.caps = caps
        self.opamp1 = opamp1 if opamp1 is not None else OpAmpModel.ideal()
        self.opamp2 = opamp2 if opamp2 is not None else OpAmpModel.ideal()
        self.rng = rng
        if unit_capacitance is not None and not unit_capacitance > 0:
            raise ConfigError(
                f"unit capacitance must be positive, got {unit_capacitance!r}"
            )
        self.unit_capacitance = unit_capacitance
        # First integrator: feedback B, switched branches A (+ worst-case
        # input CI up to 2 units) and optional damping E.
        p1 = self.opamp1.inverse_gain
        switched1 = caps.a + 2.0 + caps.e
        self._leak1 = (1.0 - p1 * switched1 / caps.b) * (
            caps.b / (caps.b + caps.e)
        )
        self._gain1 = 1.0 - p1 * (1.0 + switched1 / caps.b)
        # Second integrator: feedback D, switched branches C and F.
        p2 = self.opamp2.inverse_gain
        switched2 = caps.c + caps.f
        self._leak2 = (1.0 - p2 * switched2 / caps.d) * (caps.d / (caps.d + caps.f))
        self._gain2 = 1.0 - p2 * (1.0 + switched2 / caps.d)
        self._c2 = caps.c / (caps.d + caps.f)
        if self.unit_capacitance is not None:
            self._ktc1 = ktc_noise_rms(self.unit_capacitance * caps.b)
            self._ktc2 = ktc_noise_rms(self.unit_capacitance * caps.d)
        else:
            self._ktc1 = 0.0
            self._ktc2 = 0.0
        self.v1 = 0.0
        self.v2 = 0.0

    # ------------------------------------------------------------------
    # Linearized model (ideal amplifiers): used for design analysis
    # ------------------------------------------------------------------
    def state_matrices(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Ideal ``(M, bvec, cvec)`` of ``x[n] = M x[n-1] + bvec q[n]``.

        State ``x = [v1, v2]``; output ``y = cvec . x`` is the second
        integrator (the generator's output node).
        """
        caps = self.caps
        lam1 = caps.b / (caps.b + caps.e)
        lam2 = caps.d / (caps.d + caps.f)
        k1 = caps.a / (caps.b + caps.e)
        k2 = caps.c / (caps.d + caps.f)
        m = np.array(
            [
                [lam1, -k1],
                [k2 * lam1, lam2 - k2 * k1],
            ]
        )
        bvec = np.array([-1.0 / (caps.b + caps.e), -k2 / (caps.b + caps.e)])
        cvec = np.array([0.0, 1.0])
        return m, bvec, cvec

    # ------------------------------------------------------------------
    # Time-domain behavioural simulation
    # ------------------------------------------------------------------
    def reset(self, v1: float = 0.0, v2: float = 0.0) -> None:
        """Reset both integrator states."""
        self.v1 = float(v1)
        self.v2 = float(v2)

    def _noise(self, amp: OpAmpModel, ktc_rms: float) -> float:
        if self.rng is None:
            return 0.0
        total = 0.0
        if amp.noise_rms:
            total += amp.sample_noise(self.rng)
        if ktc_rms:
            total += float(self.rng.normal(0.0, ktc_rms))
        return total

    def step(self, input_charge: float) -> float:
        """Advance one generator clock period; returns the output ``v2``.

        ``input_charge`` is the normalized charge delivered by the input
        branch this period: ``CI(t_n) * Vin`` in unit-capacitor volts.
        """
        caps = self.caps
        target1 = (
            self._leak1 * self.v1
            - self._gain1
            * (input_charge + caps.a * self.v2 + caps.b * self.opamp1.offset)
            / (caps.b + caps.e)
            + self._noise(self.opamp1, self._ktc1)
        )
        v1_new = self.opamp1.saturate(self.opamp1.settle(self.v1, target1))
        target2 = (
            self._leak2 * self.v2
            + self._gain2 * self._c2 * (v1_new + self.opamp2.offset)
            + self._noise(self.opamp2, self._ktc2)
        )
        v2_new = self.opamp2.saturate(self.opamp2.settle(self.v2, target2))
        self.v1 = v1_new
        self.v2 = v2_new
        return v2_new

    def run(self, input_charges: np.ndarray) -> np.ndarray:
        """Advance over a charge sequence, returning the output sequence."""
        input_charges = np.asarray(input_charges, dtype=float)
        if self.is_ideal():
            return self._run_ideal(input_charges)
        out = np.empty(len(input_charges))
        for i, q in enumerate(input_charges):
            out[i] = self.step(float(q))
        return out

    def _run_ideal(self, input_charges: np.ndarray) -> np.ndarray:
        """Vectorizable ideal path (still sequential, but lean)."""
        caps = self.caps
        lam1 = caps.b / (caps.b + caps.e)
        lam2 = caps.d / (caps.d + caps.f)
        k1 = caps.a / (caps.b + caps.e)
        k2 = self._c2
        inv_b = 1.0 / (caps.b + caps.e)
        v1 = self.v1
        v2 = self.v2
        out = np.empty(len(input_charges))
        for i, q in enumerate(input_charges):
            v1 = lam1 * v1 - k1 * v2 - inv_b * q
            v2 = lam2 * v2 + k2 * v1
            out[i] = v2
        self.v1 = v1
        self.v2 = v2
        return out

    def is_ideal(self) -> bool:
        """True when both amplifiers are ideal and noise is disabled."""
        for amp in (self.opamp1, self.opamp2):
            if (
                amp.inverse_gain != 0.0
                or amp.offset != 0.0
                or amp.settling_error != 0.0
                or not np.isinf(amp.v_sat)
            ):
                return False
        if self.rng is not None and (
            self.opamp1.noise_rms or self.opamp2.noise_rms or self._ktc1 or self._ktc2
        ):
            return False
        return True
