"""kT/C sampled noise.

Every time a switch closes onto a capacitor, the channel resistance's
thermal noise is sampled and frozen as a charge error with voltage
variance ``kT/C``.  This is the fundamental noise floor of SC circuits
and, together with amplifier noise, sets the generator's spectral noise
floor in the reproduction of Fig. 8b.
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import ConfigError

#: Boltzmann constant (J/K).
BOLTZMANN = 1.380649e-23

#: Default junction temperature for lab measurements (kelvin, ~27 C).
DEFAULT_TEMPERATURE = 300.0


def ktc_noise_rms(capacitance: float, temperature: float = DEFAULT_TEMPERATURE) -> float:
    """RMS voltage noise sampled onto a capacitor (volts).

    ``sqrt(kT/C)``: 1 pF at 300 K gives about 64 uV RMS.
    """
    if not capacitance > 0:
        raise ConfigError(f"capacitance must be positive, got {capacitance!r}")
    if not temperature > 0:
        raise ConfigError(f"temperature must be positive, got {temperature!r}")
    return math.sqrt(BOLTZMANN * temperature / capacitance)


def sampled_ktc_noise(
    n_samples: int,
    capacitance: float,
    rng: np.random.Generator,
    temperature: float = DEFAULT_TEMPERATURE,
) -> np.ndarray:
    """A white Gaussian kT/C noise sequence (volts)."""
    if n_samples < 0:
        raise ConfigError(f"n_samples must be >= 0, got {n_samples}")
    sigma = ktc_noise_rms(capacitance, temperature)
    return rng.normal(0.0, sigma, size=n_samples)
