"""Two-phase non-overlapping clock generation.

Switched-capacitor circuits (the generator biquad of Fig. 2 and the
sigma-delta modulator of Fig. 5) are driven by two non-overlapping phases
``phi1``/``phi2`` (``psi1``/``psi2`` in the modulator): charge is sampled
onto capacitors during one phase and transferred during the other, and the
phases must never be high simultaneously or charge would leak between
nodes that are supposed to be isolated.

The behavioural SC models in :mod:`repro.sc` advance one full clock period
per step (sample on ``phi1``, transfer on ``phi2``), so this module's role
is (a) to generate explicit phase waveforms for timing-diagram style
verification, and (b) to validate non-overlap constraints.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError, TimingError


@dataclass(frozen=True)
class NonOverlappingPhases:
    """A two-phase non-overlapping clock generator.

    Parameters
    ----------
    subdivisions:
        Time resolution: number of sub-intervals each clock period is
        divided into when rendering phase waveforms.  Must be >= 4 so both
        phases and both guard gaps fit in a period.
    guard:
        Width of each non-overlap gap, in sub-intervals (>= 1).
    """

    subdivisions: int = 8
    guard: int = 1

    def __post_init__(self) -> None:
        if self.subdivisions < 4:
            raise ConfigError(f"subdivisions must be >= 4, got {self.subdivisions}")
        if self.guard < 1:
            raise ConfigError(f"guard must be >= 1, got {self.guard}")
        if 2 * self.guard >= self.subdivisions:
            raise ConfigError(
                f"guard intervals ({self.guard} each) leave no room for phases "
                f"in {self.subdivisions} subdivisions"
            )

    def render(self, n_periods: int) -> tuple[np.ndarray, np.ndarray]:
        """Render ``(phi1, phi2)`` waveforms over ``n_periods`` clock periods.

        Each returned array has ``n_periods * subdivisions`` 0/1 entries.
        Within one period the layout is::

            phi1 high | guard | phi2 high | guard
        """
        if n_periods < 0:
            raise ConfigError(f"n_periods must be >= 0, got {n_periods}")
        usable = self.subdivisions - 2 * self.guard
        phi1_width = (usable + 1) // 2
        phi2_width = usable - phi1_width
        if phi2_width < 1:
            # With tiny subdivision counts give phi2 at least one slot.
            phi1_width -= 1
            phi2_width += 1
        period_phi1 = np.zeros(self.subdivisions, dtype=np.int8)
        period_phi2 = np.zeros(self.subdivisions, dtype=np.int8)
        period_phi1[:phi1_width] = 1
        start2 = phi1_width + self.guard
        period_phi2[start2 : start2 + phi2_width] = 1
        phi1 = np.tile(period_phi1, n_periods)
        phi2 = np.tile(period_phi2, n_periods)
        return phi1, phi2

    @staticmethod
    def validate_non_overlap(phi1: np.ndarray, phi2: np.ndarray) -> None:
        """Raise :class:`TimingError` if the two phases are ever high together."""
        phi1 = np.asarray(phi1)
        phi2 = np.asarray(phi2)
        if phi1.shape != phi2.shape:
            raise ConfigError("phase waveforms must have identical shapes")
        overlap = np.flatnonzero((phi1 != 0) & (phi2 != 0))
        if overlap.size:
            raise TimingError(
                f"phases overlap at {overlap.size} sample(s), first at index {overlap[0]}"
            )

    def duty_cycles(self, n_periods: int = 1) -> tuple[float, float]:
        """Fraction of time each phase is high."""
        if n_periods < 1:
            raise ConfigError(f"n_periods must be >= 1, got {n_periods}")
        phi1, phi2 = self.render(n_periods)
        return float(np.mean(phi1)), float(np.mean(phi2))
