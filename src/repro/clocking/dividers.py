"""Integer frequency dividers.

The analyzer uses a single 1:6 divider (master clock to generator clock),
but the divider model is generic: it produces the square output of an
integer counter-based divider and bookkeeps exact rational frequency
relationships, which the tests use to prove the clock tree stays locked
for any master frequency.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError


@dataclass(frozen=True)
class FrequencyDivider:
    """A counter-based integer clock divider (divide-by-``ratio``).

    The output toggles every ``ratio`` input cycles when ``ratio`` is even
    (50 % duty cycle) and uses the standard asymmetric counter output when
    ``ratio`` is odd (duty cycle ``(ratio+1)/(2*ratio)``), matching simple
    CMOS divider implementations.
    """

    ratio: int

    def __post_init__(self) -> None:
        if not isinstance(self.ratio, int) or self.ratio < 1:
            raise ConfigError(f"divider ratio must be a positive integer, got {self.ratio!r}")

    def output_frequency(self, input_frequency: float) -> float:
        """Frequency of the divided clock."""
        if not input_frequency > 0:
            raise ConfigError(f"input frequency must be positive, got {input_frequency!r}")
        return input_frequency / self.ratio

    def output_levels(self, n_input_cycles: int) -> np.ndarray:
        """Logic level of the divided clock for each input cycle.

        Returns an int8 array of 0/1 levels, one per input clock cycle,
        starting from a reset counter (output high first).
        """
        if n_input_cycles < 0:
            raise ConfigError(f"n_input_cycles must be >= 0, got {n_input_cycles}")
        n = np.arange(n_input_cycles)
        phase = n % self.ratio
        high_count = (self.ratio + 1) // 2
        return (phase < high_count).astype(np.int8)

    def rising_edges(self, n_input_cycles: int) -> np.ndarray:
        """Indices of input cycles at which the divided clock rises."""
        levels = self.output_levels(n_input_cycles)
        if len(levels) == 0:
            return np.empty(0, dtype=int)
        prev = np.concatenate(([0], levels[:-1]))
        edges = np.flatnonzero((levels == 1) & (prev == 0))
        return edges

    def cycle_index(self, n_input_cycles: int) -> np.ndarray:
        """Output-cycle index for each input cycle (floor division)."""
        if n_input_cycles < 0:
            raise ConfigError(f"n_input_cycles must be >= 0, got {n_input_cycles}")
        return np.arange(n_input_cycles) // self.ratio
