"""Clock generation and control sequencing.

The network analyzer of the paper is a *single-clock* system: an external
master clock at ``feva`` drives the sigma-delta evaluator directly, a 1:6
divider derives the generator clock ``fgen``, and the generator's 16-step
input sequence sets the synthesized tone at ``fwave = fgen/16 = feva/96``.
Because every internal frequency is an integer division of the master
clock, the oversampling ratio ``N = feva/fwave = 96`` is fixed *by
construction* and the whole analyzer is retuned simply by sweeping the
master clock.  This package models that clock tree and the two control
sequences (the generator's capacitor selection ``c1..c4``/``phi_in`` of
Fig. 2c and the evaluator's square-wave modulation bit ``q_k`` of Fig. 5).
"""

from .master import ClockTree, MasterClock
from .dividers import FrequencyDivider
from .phases import NonOverlappingPhases
from .sequencer import GeneratorSequence, ModulationSequence

__all__ = [
    "ClockTree",
    "MasterClock",
    "FrequencyDivider",
    "NonOverlappingPhases",
    "GeneratorSequence",
    "ModulationSequence",
]
