"""Master clock and the analyzer's divided clock tree.

Paper, Section II: "The system operates based on an external master clock,
at frequency ``feva``.  A 1:6 frequency divider generates the appropriate
clock frequency, ``fgen = feva/6``, for the generator block [...] the
sinewave generator [...] delivers a sinewave signal with a frequency
``fwave = fgen/16 = feva/96``."
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError, TimingError

#: Divider ratio between master clock and generator clock (paper: 1:6).
GENERATOR_DIVIDER = 6

#: Steps per output period of the generator's time-variant input (paper: 16).
GENERATOR_STEPS = 16

#: Oversampling ratio fixed by construction: N = feva / fwave.
OVERSAMPLING_RATIO = GENERATOR_DIVIDER * GENERATOR_STEPS  # = 96


@dataclass(frozen=True)
class MasterClock:
    """The external master clock at frequency ``feva`` (hertz).

    The master clock is the only tuning knob of the analyzer: all internal
    frequencies are derived from it by fixed integer ratios.
    """

    feva: float

    def __post_init__(self) -> None:
        if not self.feva > 0:
            raise ConfigError(f"master clock frequency must be positive, got {self.feva!r}")

    @property
    def period(self) -> float:
        """Sampling period ``Ts = 1/feva`` (seconds)."""
        return 1.0 / self.feva

    @classmethod
    def for_fwave(cls, fwave: float) -> "MasterClock":
        """Master clock that produces a given output tone frequency."""
        if not fwave > 0:
            raise ConfigError(f"fwave must be positive, got {fwave!r}")
        return cls(feva=fwave * OVERSAMPLING_RATIO)

    @classmethod
    def for_fgen(cls, fgen: float) -> "MasterClock":
        """Master clock that produces a given generator clock frequency."""
        if not fgen > 0:
            raise ConfigError(f"fgen must be positive, got {fgen!r}")
        return cls(feva=fgen * GENERATOR_DIVIDER)


@dataclass(frozen=True)
class ClockTree:
    """The analyzer's full clock tree, derived from one master clock.

    Exposes every frequency of Fig. 1 plus sample-domain conversion
    helpers.  The tree is immutable: retuning the analyzer means building a
    new tree from a new master clock.
    """

    master: MasterClock

    @classmethod
    def from_feva(cls, feva: float) -> "ClockTree":
        return cls(MasterClock(feva))

    @classmethod
    def from_fwave(cls, fwave: float) -> "ClockTree":
        return cls(MasterClock.for_fwave(fwave))

    @property
    def feva(self) -> float:
        """Master / evaluator sampling frequency."""
        return self.master.feva

    @property
    def fgen(self) -> float:
        """Generator switching frequency, ``feva / 6``."""
        return self.master.feva / GENERATOR_DIVIDER

    @property
    def fwave(self) -> float:
        """Synthesized tone frequency, ``fgen / 16 = feva / 96``."""
        return self.fgen / GENERATOR_STEPS

    @property
    def oversampling_ratio(self) -> int:
        """``N = feva / fwave``; always 96 by construction."""
        return OVERSAMPLING_RATIO

    @property
    def samples_per_gen_step(self) -> int:
        """Evaluator samples per generator output step (= the 1:6 divider)."""
        return GENERATOR_DIVIDER

    @property
    def ts(self) -> float:
        """Evaluator sampling period (seconds)."""
        return self.master.period

    @property
    def tone_period(self) -> float:
        """Period ``T = 1/fwave`` of the synthesized tone (seconds)."""
        return 1.0 / self.fwave

    def samples_for_periods(self, periods: int) -> int:
        """Number of evaluator samples spanning ``periods`` tone periods."""
        if periods < 0:
            raise ConfigError(f"periods must be >= 0, got {periods}")
        return periods * OVERSAMPLING_RATIO

    def gen_steps_for_periods(self, periods: int) -> int:
        """Number of generator clock cycles spanning ``periods`` tone periods."""
        if periods < 0:
            raise ConfigError(f"periods must be >= 0, got {periods}")
        return periods * GENERATOR_STEPS

    def assert_coherent_with(self, sample_rate: float) -> None:
        """Check that a waveform's sample rate matches the evaluator clock.

        The evaluator's bounded-error guarantees rely on the sampling grid
        being exactly the master clock; this guard catches accidental use
        of waveforms sampled on a different clock.
        """
        if abs(sample_rate - self.feva) > 1e-9 * self.feva:
            raise TimingError(
                f"waveform sampled at {sample_rate} Hz is not on the master clock "
                f"({self.feva} Hz); the analyzer is a single-clock system"
            )
