"""Control sequences: generator capacitor selection and evaluator modulation.

Two digital sequences orchestrate the analyzer:

* **Generator sequence** (Fig. 2c): over each 16-cycle output period of the
  generator clock, one-hot signals ``c1..c4`` select which input capacitor
  of the time-variant array is switched into the signal path, and the
  polarity signal ``phi_in`` selects whether the sampled charge is added
  with positive or negative weight.  Together they make the input charge
  follow a 16-step quantized sinewave (paper eqs. (1)-(2)).

* **Modulation sequence** (Figs. 4b and 5): the evaluator multiplies the
  signal under test by square waves of period ``T/k`` in phase (``SQ_kT``)
  and in quadrature (``SQ_kT`` delayed by ``T/4k``).  The multiplication is
  folded into the sigma-delta input switching via the polarity bit ``q_k``.
  For the quadrature wave to live on the sampling grid, the quarter-period
  delay must be an integer number of samples: ``N % 4k == 0``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError
from .master import GENERATOR_STEPS

#: Capacitor index pattern over one 16-step period (paper Fig. 2c): the
#: positive half selects CI0..CI4 up and back down, then the same pattern
#: repeats with inverted polarity for the negative half.
_HALF_PATTERN = (0, 1, 2, 3, 4, 3, 2, 1)


def capacitor_weight(k: int) -> float:
    """Normalized weight of array capacitor ``CI_k`` (paper eq. (2)).

    ``CI_k = 2 sin(k pi / 8)`` for ``k = 0, 1, ... 4``.
    """
    if not 0 <= k <= 4:
        raise ConfigError(f"capacitor index must be in 0..4, got {k}")
    return 2.0 * math.sin(k * math.pi / 8.0)


@dataclass(frozen=True)
class GeneratorSequence:
    """The 16-step capacitor-selection sequence of the sinewave generator.

    All methods are phrased in generator clock cycles ``n`` (rate ``fgen``);
    one output period spans ``GENERATOR_STEPS = 16`` cycles.
    """

    def cap_index(self, n) -> np.ndarray:
        """Selected capacitor index (0..4) at generator cycle ``n``."""
        n = np.asarray(n)
        step = np.mod(n, GENERATOR_STEPS)
        pattern = np.array(_HALF_PATTERN + _HALF_PATTERN)
        return pattern[step]

    def polarity(self, n) -> np.ndarray:
        """Polarity (+1 first half period, -1 second half): the ``phi_in`` signal."""
        n = np.asarray(n)
        step = np.mod(n, GENERATOR_STEPS)
        return np.where(step < GENERATOR_STEPS // 2, 1, -1)

    def quantized_weight(self, n) -> np.ndarray:
        """Signed input weight ``polarity * CI_k`` at cycle ``n``.

        This *is* the 16-step quantized sinewave of paper eq. (1): for the
        chosen pattern, ``quantized_weight(n) == 2 sin(2 pi n / 16)``
        exactly, because ``CI_k = 2 sin(k pi/8)`` samples the sine at the
        pattern's step positions.
        """
        n = np.asarray(n)
        weights = np.array([capacitor_weight(k) for k in range(5)])
        return self.polarity(n) * weights[self.cap_index(n)]

    def one_hot(self, n_cycles: int) -> np.ndarray:
        """The ``c1..c4`` one-hot control lines for ``n_cycles`` cycles.

        Returns an ``(n_cycles, 4)`` 0/1 array; column ``j`` is ``c_{j+1}``.
        A row is all-zero when the zero-weight capacitor slot (``k = 0``,
        no charge sampled) is active, matching Fig. 2c where none of
        ``c1..c4`` is asserted on those cycles.
        """
        if n_cycles < 0:
            raise ConfigError(f"n_cycles must be >= 0, got {n_cycles}")
        idx = self.cap_index(np.arange(n_cycles))
        out = np.zeros((n_cycles, 4), dtype=np.int8)
        for j in range(1, 5):
            out[:, j - 1] = idx == j
        return out


@dataclass(frozen=True)
class ModulationSequence:
    """Square-wave modulation bits for the sinewave evaluator.

    Parameters
    ----------
    oversampling_ratio:
        ``N = feva / fwave`` — samples per period of the signal under
        evaluation (96 in the paper's analyzer).
    harmonic:
        ``k`` — the harmonic being extracted.  The modulating square waves
        have period ``T/k``.  ``k = 0`` selects the DC measurement: the
        "square wave" degenerates to the constant +1.
    """

    oversampling_ratio: int
    harmonic: int

    def __post_init__(self) -> None:
        n = self.oversampling_ratio
        k = self.harmonic
        if not isinstance(n, int) or n < 4:
            raise ConfigError(f"oversampling ratio must be an integer >= 4, got {n!r}")
        if not isinstance(k, int) or k < 0:
            raise ConfigError(f"harmonic index must be a non-negative integer, got {k!r}")
        if k > 0 and n % (4 * k) != 0:
            raise ConfigError(
                f"harmonic k={k} is not realizable at N={n}: the quadrature "
                f"square wave needs a quarter-period of N/(4k) samples, so "
                f"N must be divisible by 4k (paper Section III.B feasibility "
                f"condition)"
            )

    @property
    def samples_per_square_period(self) -> int:
        """Samples per period of the modulating square wave (``N/k``)."""
        if self.harmonic == 0:
            return self.oversampling_ratio
        return self.oversampling_ratio // self.harmonic

    @property
    def quarter_shift(self) -> int:
        """Quadrature delay ``T/4k`` in samples (``N/4k``)."""
        if self.harmonic == 0:
            return 0
        return self.oversampling_ratio // (4 * self.harmonic)

    def in_phase(self, n) -> np.ndarray:
        """``SQ_kT`` sampled at sample indices ``n`` (values +/-1).

        Convention: ``+1`` on the first half of each square period (the
        sign of ``sin(2 pi k t / T)`` with the half-sample-open convention
        at the zero crossings).
        """
        n = np.asarray(n)
        if self.harmonic == 0:
            return np.ones(n.shape, dtype=np.int8)
        period = self.samples_per_square_period
        phase = np.mod(n, period)
        return np.where(phase < period // 2, 1, -1).astype(np.int8)

    def quadrature(self, n) -> np.ndarray:
        """``SQ_kT(t - T/4k)`` sampled at sample indices ``n`` (values +/-1)."""
        n = np.asarray(n)
        if self.harmonic == 0:
            return np.ones(n.shape, dtype=np.int8)
        return self.in_phase(n - self.quarter_shift)

    def pair(self, n_samples: int) -> tuple[np.ndarray, np.ndarray]:
        """Both modulation sequences for samples ``0..n_samples-1``."""
        if n_samples < 0:
            raise ConfigError(f"n_samples must be >= 0, got {n_samples}")
        idx = np.arange(n_samples)
        return self.in_phase(idx), self.quadrature(idx)

    @staticmethod
    def allowed_harmonics(oversampling_ratio: int, k_max: int | None = None) -> list[int]:
        """All harmonics realizable at a given oversampling ratio.

        For the paper's ``N = 96``: ``[1, 2, 3, 4, 6, 8, 12, 24]``.
        """
        if oversampling_ratio < 4:
            raise ConfigError(
                f"oversampling ratio must be >= 4, got {oversampling_ratio}"
            )
        limit = k_max if k_max is not None else oversampling_ratio // 4
        return [
            k
            for k in range(1, limit + 1)
            if oversampling_ratio % (4 * k) == 0
        ]
