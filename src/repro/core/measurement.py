"""Measurement result containers.

All analyzer results carry :class:`~repro.intervals.BoundedValue` fields:
the point estimate plus the guaranteed interval of the paper's equations
(3)-(5) — the error bands of Fig. 10.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ConfigError
from ..intervals import BoundedValue
from ..evaluator.signatures import SignaturePair


def bounded_db(value: BoundedValue, floor_db: float = -200.0) -> BoundedValue:
    """Map an amplitude-ratio interval into decibels.

    ``20*log10`` is monotone, so the endpoints map directly; non-positive
    lower endpoints clamp to ``floor_db`` (the bound "touches zero", the
    deep-stopband situation where the paper's error band blows up).
    """

    def to_db(x: float) -> float:
        if x <= 10.0 ** (floor_db / 20.0):
            return floor_db
        return 20.0 * math.log10(x)

    return BoundedValue(
        to_db(value.value), to_db(value.lower), to_db(value.upper)
    )


@dataclass(frozen=True)
class StimulusMeasurement:
    """One evaluator acquisition of a tone (amplitude + phase + raw counts)."""

    fwave: float
    amplitude: BoundedValue
    phase: BoundedValue
    signature: SignaturePair

    def __post_init__(self) -> None:
        if not self.fwave > 0:
            raise ConfigError(f"fwave must be positive, got {self.fwave!r}")

    @property
    def amplitude_dbm_fs(self) -> float:
        """Paper Fig. 9 dB convention of the point estimate."""
        from ..units import dbm_fs

        return float(dbm_fs(self.amplitude.value, vref=self.signature.vref))


@dataclass(frozen=True)
class GainPhaseMeasurement:
    """One Bode point: DUT gain and phase with guaranteed bounds."""

    fwave: float
    gain: BoundedValue  # linear magnitude ratio
    phase_rad: BoundedValue  # radians, output phase minus input phase
    output: StimulusMeasurement
    reference: StimulusMeasurement

    def __post_init__(self) -> None:
        if not self.fwave > 0:
            raise ConfigError(f"fwave must be positive, got {self.fwave!r}")

    @property
    def gain_db(self) -> BoundedValue:
        """Gain in decibels (interval-mapped)."""
        return bounded_db(self.gain)

    @property
    def phase_deg(self) -> BoundedValue:
        """Phase in degrees (interval scaled; not wrapped, so bands stay
        contiguous across the -180 degree crossing).

        A single point's estimate still comes from an ``atan2`` centred
        in ``(-180, 180]``; a *sweep* of points therefore unwraps the
        trace as a whole (:meth:`repro.core.bode.BodeResult.phase_deg`),
        and phase-interval *comparisons* must be circle-aware
        (:func:`repro.intervals.angular_gap`).
        """
        factor = 180.0 / math.pi
        return self.phase_rad.scale(factor)


@dataclass(frozen=True)
class HarmonicDistortionMeasurement:
    """One harmonic's level relative to the fundamental."""

    harmonic: int
    amplitude: BoundedValue  # volts at the DUT output
    level_dbc: BoundedValue  # relative to the measured fundamental
    reference_dbc: float  # the oscilloscope (direct-FFT) reading

    def __post_init__(self) -> None:
        if self.harmonic < 2:
            raise ConfigError(
                f"distortion harmonics start at 2, got {self.harmonic}"
            )

    @property
    def agreement_db(self) -> float:
        """|analyzer - oscilloscope| for the point estimates."""
        return abs(self.level_dbc.value - self.reference_dbc)
