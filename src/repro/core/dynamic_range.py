"""Dynamic-range characterization (the headline 70 dB / 20 kHz claim).

Two notions of dynamic range matter in the paper:

* the **evaluator's** dynamic range — how small a harmonic component it
  can still measure accurately next to a full-scale fundamental.  Fig. 9
  demonstrates -40 dBc components measured to fractions of a dB and notes
  "the evaluator does not limit the dynamic range of the network
  analyzer, since the accuracy of the evaluation can be selected by
  choosing a proper number of periods M";
* the **system** dynamic range — limited in practice by the generator's
  spectral purity (~70 dB SFDR in Fig. 8b).

Both are characterized here.  The evaluator sweep injects a synthetic
two-tone signal directly (like the paper's Fig. 9 setup); the system
sweep measures the analyzer's own residual harmonics on the calibration
path.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..clocking.master import OVERSAMPLING_RATIO
from ..errors import ConfigError
from ..evaluator.dsp import SignatureDSP
from ..evaluator.evaluator import SinewaveEvaluator
from .analyzer import NetworkAnalyzer


@dataclass(frozen=True)
class ProbeResult:
    """One weak-tone detection probe."""

    level_dbc: float  # programmed weak-tone level relative to the carrier
    true_amplitude: float
    measured_amplitude: float
    error_db: float  # |20 log10(measured / true)|
    detected: bool


@dataclass(frozen=True)
class DynamicRangeResult:
    """Outcome of a dynamic-range sweep."""

    m_periods: int
    carrier_amplitude: float
    probes: tuple[ProbeResult, ...]
    threshold_db: float

    @property
    def dynamic_range_db(self) -> float:
        """Deepest level (positive dB) still detected within threshold."""
        detected = [-p.level_dbc for p in self.probes if p.detected]
        return max(detected) if detected else 0.0


def run_evaluator_probe(job) -> ProbeResult:
    """One weak-tone detectability probe (pure function of the payload).

    The probe synthesizes its own two-tone signal and runs a fresh ideal
    evaluator, so it is deterministic and schedulable as an independent
    :class:`~repro.engine.jobs.EvaluatorProbeJob` — no seeding needed.
    """
    mn = job.m_periods * job.oversampling_ratio
    n = np.arange(mn)
    carrier = job.carrier_amplitude * np.sin(
        2.0 * np.pi * n / job.oversampling_ratio
    )
    weak_amplitude = job.carrier_amplitude * 10.0 ** (job.level_dbc / 20.0)
    x = carrier + weak_amplitude * np.sin(
        2.0 * np.pi * job.harmonic * n / job.oversampling_ratio
    )
    evaluator = SinewaveEvaluator(
        oversampling_ratio=job.oversampling_ratio, vref=job.vref
    )
    sig = evaluator.measure(x, harmonic=job.harmonic, m_periods=job.m_periods)
    measured = SignatureDSP().amplitude(sig).value
    if measured <= 0:
        error_db = math.inf
    else:
        error_db = abs(20.0 * math.log10(measured / weak_amplitude))
    return ProbeResult(
        level_dbc=job.level_dbc,
        true_amplitude=weak_amplitude,
        measured_amplitude=measured,
        error_db=error_db,
        detected=error_db <= job.threshold_db,
    )


def evaluator_dynamic_range(
    m_periods: int = 1000,
    carrier_amplitude: float = 0.4,
    vref: float = 0.5,
    harmonic: int = 3,
    levels_dbc=(-30.0, -40.0, -50.0, -60.0, -70.0, -80.0, -90.0),
    threshold_db: float = 3.0,
    oversampling_ratio: int = OVERSAMPLING_RATIO,
    # repro: allow[REP002]: documented deprecation shim — forwards into an
    # ExecutionPolicy below; new callers use Session.dynamic_range()
    n_workers: int = 1,
    runner=None,
) -> DynamicRangeResult:
    """Weak-tone detectability of the evaluator alone (Fig. 9 style).

    A full-scale-ish carrier at the fundamental plus a weak tone at
    ``harmonic``; the weak tone's level is stepped down until the
    evaluator's measurement departs from the truth by more than
    ``threshold_db``.

    Each level is an independent, deterministic probe, dispatched
    through the batch engine: ``n_workers > 1`` runs them on worker
    processes with identical numbers (pass an existing
    :class:`~repro.engine.runner.BatchRunner` as ``runner`` to reuse its
    pool; its calibration cache is not involved).
    """
    from ..api.policy import ExecutionPolicy
    from ..engine.jobs import EvaluatorProbeJob, execute_evaluator_probe

    if not 0 < carrier_amplitude < vref:
        raise ConfigError(
            f"carrier amplitude must be within the stable range (0, {vref}), "
            f"got {carrier_amplitude!r}"
        )
    if m_periods % 2 != 0:
        raise ConfigError(f"m_periods must be even, got {m_periods}")
    jobs = [
        EvaluatorProbeJob(
            level_dbc=float(level),
            m_periods=m_periods,
            carrier_amplitude=carrier_amplitude,
            vref=vref,
            harmonic=harmonic,
            threshold_db=threshold_db,
            oversampling_ratio=oversampling_ratio,
        )
        for level in sorted(levels_dbc, reverse=True)
    ]
    if runner is not None:
        engine = runner
    else:
        engine = ExecutionPolicy(n_workers=n_workers).build_runner()
    probes = engine.map_jobs(execute_evaluator_probe, jobs)
    return DynamicRangeResult(
        m_periods=m_periods,
        carrier_amplitude=carrier_amplitude,
        probes=tuple(probes),
        threshold_db=threshold_db,
    )


def theoretical_floor_dbc(
    m_periods: int,
    carrier_amplitude: float = 0.4,
    vref: float = 0.5,
    epsilon: float = 4.0,
    oversampling_ratio: int = OVERSAMPLING_RATIO,
) -> float:
    """Bound-limited measurement floor relative to the carrier (negative dB).

    The smallest amplitude whose error interval stays meaningful is set by
    the eps-rectangle: ``(pi/2) vref eps sqrt(2) / (M N)``.
    """
    dsp = SignatureDSP(epsilon)
    floor = dsp.noise_floor(m_periods, oversampling_ratio, vref)
    return 20.0 * math.log10(floor / carrier_amplitude)


def system_dynamic_range(
    analyzer: NetworkAnalyzer,
    fwave: float,
    m_periods: int | None = None,
    harmonics: tuple[int, ...] = (2, 3),
) -> float:
    """System-level dynamic range at one frequency (positive dB).

    Measures the analyzer's own residual harmonic levels on the
    calibration path — in silicon this is what the generator's analog
    purity (~70 dB SFDR) caps.  The DSP subtracts its *known* staircase
    image leakage (see :mod:`repro.core.compensation`): an ideal
    generator then reads only the quantization floor, while mismatch and
    amplifier errors surface as genuine in-band residuals, exactly the
    mechanism that limits the fabricated system.
    """
    import cmath

    from .compensation import bypass_response

    if any(k < 2 for k in harmonics):
        raise ConfigError(f"harmonics must be >= 2, got {harmonics}")
    m = m_periods if m_periods is not None else analyzer.config.m_periods
    fundamental = analyzer.measure_stimulus(
        fwave, through_dut=False, m_periods=m, harmonic=1
    )
    z1 = fundamental.amplitude.value * cmath.exp(1j * fundamental.phase.value)
    worst = 0.0
    for k in harmonics:
        measurement = analyzer.measure_stimulus(
            fwave, through_dut=False, m_periods=m, harmonic=k
        )
        zk = measurement.amplitude.value * cmath.exp(1j * measurement.phase.value)
        if analyzer.config.image_compensation:
            zk -= bypass_response(k, analyzer.config_generator_caps()) * z1
        worst = max(worst, abs(zk))
    if worst <= 0:
        return math.inf
    return 20.0 * math.log10(abs(z1) / worst)
