"""Frequency sweep planning.

The analyzer retunes by sweeping the master clock: a sweep plan is just a
list of tone frequencies, each implying ``feva = 96 fwave``.  Plans are
log-spaced by default (Bode convention) and provide the paper's Fig. 10
sweep as a named constructor.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError

#: The audio-range limit the paper claims for the analyzer.
PAPER_MAX_FREQUENCY = 20e3

#: Lower edge of the paper's Fig. 10 Bode plots.
PAPER_MIN_FREQUENCY = 100.0


@dataclass(frozen=True)
class FrequencySweepPlan:
    """A log-spaced master-clock sweep.

    Parameters
    ----------
    f_start, f_stop:
        Tone frequency range (hertz), inclusive.
    n_points:
        Number of sweep points.
    """

    f_start: float
    f_stop: float
    n_points: int

    def __post_init__(self) -> None:
        if not 0 < self.f_start < self.f_stop:
            raise ConfigError(
                f"need 0 < f_start < f_stop, got {self.f_start}..{self.f_stop}"
            )
        if self.n_points < 2:
            raise ConfigError(f"n_points must be >= 2, got {self.n_points}")

    def frequencies(self) -> np.ndarray:
        """The tone frequencies of the plan."""
        return np.geomspace(self.f_start, self.f_stop, self.n_points)

    def master_clock_frequencies(self) -> np.ndarray:
        """The corresponding master clock frequencies (``96 fwave``)."""
        from ..clocking.master import OVERSAMPLING_RATIO

        return self.frequencies() * OVERSAMPLING_RATIO

    @classmethod
    def paper_fig10(cls, n_points: int = 25) -> "FrequencySweepPlan":
        """The Fig. 10 Bode sweep: 100 Hz to 20 kHz."""
        return cls(PAPER_MIN_FREQUENCY, PAPER_MAX_FREQUENCY, n_points)

    @classmethod
    def around(
        cls,
        f_center: float,
        decades: float = 1.0,
        n_points: int = 11,
        clamp: bool = True,
    ) -> "FrequencySweepPlan":
        """A sweep centred (log-wise) on a frequency of interest.

        The requested window is intersected with the analyzer's valid
        band ``[PAPER_MIN_FREQUENCY, PAPER_MAX_FREQUENCY]`` — a wide
        window around a cutoff near the band edge would otherwise
        silently plan points the instrument cannot measure (above the
        audio-range limit, or at arbitrarily low tones).  A window
        lying entirely outside the band raises
        :class:`~repro.errors.ConfigError`; pass ``clamp=False`` to
        make *any* out-of-band edge an error instead of a clamp.
        """
        if not f_center > 0:
            raise ConfigError(f"f_center must be positive, got {f_center!r}")
        if not decades > 0:
            raise ConfigError(f"decades must be positive, got {decades!r}")
        half = 10.0 ** (decades / 2.0)
        f_start = f_center / half
        f_stop = f_center * half
        if f_start > PAPER_MAX_FREQUENCY or f_stop < PAPER_MIN_FREQUENCY:
            raise ConfigError(
                f"sweep around {f_center:g} Hz ({decades:g} decades) spans "
                f"{f_start:g}..{f_stop:g} Hz, entirely outside the "
                f"analyzer's valid band "
                f"[{PAPER_MIN_FREQUENCY:g}, {PAPER_MAX_FREQUENCY:g}] Hz"
            )
        if not clamp and (
            f_start < PAPER_MIN_FREQUENCY or f_stop > PAPER_MAX_FREQUENCY
        ):
            raise ConfigError(
                f"sweep around {f_center:g} Hz ({decades:g} decades) spans "
                f"{f_start:g}..{f_stop:g} Hz, beyond the analyzer's valid "
                f"band [{PAPER_MIN_FREQUENCY:g}, {PAPER_MAX_FREQUENCY:g}] Hz "
                f"(pass clamp=True to intersect with the band)"
            )
        f_start = max(f_start, PAPER_MIN_FREQUENCY)
        f_stop = min(f_stop, PAPER_MAX_FREQUENCY)
        if not f_start < f_stop:
            raise ConfigError(
                f"sweep around {f_center:g} Hz collapses after clamping to "
                f"the analyzer band: {f_start:g}..{f_stop:g} Hz"
            )
        return cls(f_start, f_stop, n_points)
