"""Architecture-derived systematic-error compensation.

The analyzer's stimulus is not a mathematical sine: it is a staircase
held at ``fgen`` whose continuous spectrum carries sampling images at
orders ``16j +/- 1`` (amplitude ``1/m`` of the fundamental).  Two small,
*exactly known* systematics follow, both verified numerically in the test
suite:

1. **Calibration-path image leakage.**  The evaluator's square-wave
   correlator responds to odd harmonics; the images land on odd orders,
   so the bypass measurement over-reads the stimulus fundamental by a
   factor ``1 + lambda_k`` where ``lambda_k`` is a pure design constant
   (for Table I and N = 96, about +1.26 % at k = 1).  Because the whole
   analyzer scales with the master clock, ``lambda_k`` is
   frequency-independent and can be computed once from the ideal
   generator model and divided out.

2. **ZOH half-sample delay on the DUT path.**  Sampling the staircase at
   its own step instants recovers the original samples (no delay), but
   the DUT responds to the *continuous* staircase, whose fundamental is
   delayed by half a master-clock period and drooped by
   ``sinc(pi/N)``.  Measured DUT phase is therefore offset by a constant
   ``-pi/N`` (-1.875 degrees at N = 96) and gain by -0.0012 dB — also
   exactly correctable.

What cannot be corrected is the leakage of images *through the DUT*
(their attenuation at 15x, 17x, ... the test frequency is precisely what
the analyzer does not know).  That residual is **bounded** instead:
:func:`leakage_budget` gives the worst-case relative leakage assuming
the DUT passes images with a configurable gain relative to its response
at the test tone, and the analyzer widens its guaranteed intervals by
that budget.  This keeps the reported error bands honest for the full
physical system, not just for the quantization error of eqs. (3)-(5).
"""

from __future__ import annotations

import cmath
import math
from functools import lru_cache

import numpy as np

from ..clocking.master import ClockTree, OVERSAMPLING_RATIO
from ..clocking.sequencer import ModulationSequence
from ..errors import ConfigError
from ..generator.design import PAPER_CAPACITORS
from ..sc.biquad import BiquadCapacitors


def zoh_phase_offset(oversampling_ratio: int = OVERSAMPLING_RATIO) -> float:
    """Half-sample phase delay of the held stimulus (radians, positive)."""
    if oversampling_ratio < 4:
        raise ConfigError(
            f"oversampling ratio must be >= 4, got {oversampling_ratio}"
        )
    return math.pi / oversampling_ratio


def zoh_fundamental_droop(oversampling_ratio: int = OVERSAMPLING_RATIO) -> float:
    """Amplitude droop of the held fundamental: ``sinc(pi/N)`` (< 1)."""
    x = math.pi / oversampling_ratio
    return math.sin(x) / x


@lru_cache(maxsize=64)
def bypass_response(
    harmonic: int = 1, caps: BiquadCapacitors = PAPER_CAPACITORS
) -> complex:
    """Phasor the bypass k-measurement reads per unit stimulus fundamental.

    ``mu_k``: an ideal generator producing a fundamental phasor
    ``A1 e^{j phi1}`` makes the (exact-correlation) k-th bypass
    measurement read ``mu_k * A1 e^{j k phi-ish}`` — for ``k = 1``,
    ``mu_1 = 1 + lambda`` with ``lambda`` the +1.26 % self-leakage; for
    higher odd harmonics the stimulus has *no* true component, so the
    entire reading ``mu_k`` is known leakage the DSP can subtract.
    A clock-invariant design constant, computed once per (k, capacitor
    set) from the ideal generator model.
    """
    from ..evaluator.dsp import correlation_gain, phase_offset
    from ..generator.sinewave_generator import SinewaveGenerator

    n = OVERSAMPLING_RATIO
    ModulationSequence(n, harmonic)  # validates k
    clock = ClockTree.from_fwave(1.0)
    generator = SinewaveGenerator(clock, caps=caps)
    generator.set_amplitude(0.25)
    periods = 16
    held = generator.render_held(periods)
    x = held.samples[: periods * n]
    sequence = ModulationSequence(n, harmonic)
    q1, q2 = sequence.pair(len(x))
    c1 = float(np.sum(q1 * x)) / len(x)
    c2 = float(np.sum(q2 * x)) / len(x)
    gain = correlation_gain(n, harmonic)
    measured = (c1 - 1j * c2) / gain  # A e^{j(phi - pi/P)}
    measured *= cmath.exp(1j * phase_offset(n, harmonic))
    spectrum = np.fft.rfft(x) / len(x) * 2.0
    fund = spectrum[periods]
    true = abs(fund) * cmath.exp(1j * (cmath.phase(fund) + math.pi / 2.0))
    if abs(true) == 0:
        return 0j
    return measured / true


def stimulus_leakage(
    harmonic: int = 1, caps: BiquadCapacitors = PAPER_CAPACITORS
) -> complex:
    """Relative self-leakage ``lambda_k = mu_k - delta_{k,1}``."""
    mu = bypass_response(harmonic, caps)
    return mu - (1.0 if harmonic == 1 else 0.0)


@lru_cache(maxsize=64)
def leakage_budget(
    harmonic: int = 1, oversampling_ratio: int = OVERSAMPLING_RATIO
) -> float:
    """Worst-case relative image leakage into a k-th measurement.

    Computed in the *sampled* domain, which automatically folds the
    continuous image series correctly: with ``X`` the one-period DFT of
    the ideal held stimulus and ``Q`` the DFT of the modulating square
    sequence, the correlation reads ``sum_b Q_b* X_b``; every bin other
    than ``b = k`` is leakage.  The worst-case (all leakage phasors
    aligned) amplitude mis-reading, expressed relative to the stimulus
    *fundamental* amplitude, is::

        budget = sum_{b != k} |Q_b X_b| / (|Q_k| |X_1|)

    (``|Q_k|`` converts counts back to volts for a harmonic-k
    measurement; ``|X_1|`` normalizes to the fundamental).  The DUT
    multiplies each leakage bin by its (unknown) response, which the
    analyzer covers with the configurable ``image_budget_gain``.  Even
    harmonics have zero budget: images sit on odd orders only.
    """
    if harmonic < 1:
        raise ConfigError(f"harmonic must be >= 1, got {harmonic}")
    n = oversampling_ratio
    ModulationSequence(n, harmonic)  # validates feasibility
    steps = 16  # the generator's quantized-sine resolution
    if n % steps != 0:
        raise ConfigError(
            f"oversampling ratio {n} is not a multiple of the generator's "
            f"{steps}-step period"
        )
    hold = n // steps
    staircase = np.repeat(np.sin(2.0 * math.pi * np.arange(steps) / steps), hold)
    x_bins = np.abs(np.fft.rfft(staircase))
    x_bins[x_bins < 1e-9 * np.max(x_bins)] = 0.0
    q = ModulationSequence(n, harmonic).in_phase(np.arange(n)).astype(float)
    q_bins = np.abs(np.fft.rfft(q))
    products = q_bins * x_bins
    wanted = products[harmonic]
    denominator = q_bins[harmonic] * x_bins[1]
    if denominator == 0:
        raise ConfigError(
            f"harmonic {harmonic} has no square-wave fundamental at N={n}"
        )
    return float((np.sum(products) - wanted) / denominator)


def corrected_bypass_phasor(
    amplitude_value: float, phase_value: float, harmonic: int = 1,
    caps: BiquadCapacitors = PAPER_CAPACITORS,
) -> tuple[float, float]:
    """Divide the known self-leakage out of a bypass measurement."""
    lam = stimulus_leakage(harmonic, caps)
    factor = 1.0 + lam
    return amplitude_value / abs(factor), phase_value - cmath.phase(factor)
