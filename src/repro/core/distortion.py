"""Harmonic distortion measurement (paper Section IV.C, Fig. 10c).

The paper verifies the analyzer's harmonic-distortion capability by
measuring the 2nd and 3rd harmonics of the DUT output and comparing
against a digital oscilloscope's FFT ("the agreement between the
commercial system and the proposed network analyzer is excellent").

:func:`measure_distortion` reproduces the whole experiment: the analyzer
measures harmonics 1..k of the DUT response (M = 400 periods in the
paper), and the same response waveform is handed to a direct coherent FFT
— the oscilloscope stand-in — to produce the reference levels.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError
from ..signals import metrics
from ..signals.spectrum import Spectrum
from .analyzer import NetworkAnalyzer
from .measurement import HarmonicDistortionMeasurement, bounded_db


@dataclass(frozen=True)
class DistortionReport:
    """Outcome of one harmonic-distortion experiment."""

    fwave: float
    m_periods: int
    fundamental_amplitude: float  # analyzer point estimate, volts
    rows: tuple[HarmonicDistortionMeasurement, ...]

    def worst_agreement_db(self) -> float:
        """Largest |analyzer - oscilloscope| discrepancy across harmonics."""
        return max(row.agreement_db for row in self.rows)

    def level_dbc(self, harmonic: int) -> HarmonicDistortionMeasurement:
        for row in self.rows:
            if row.harmonic == harmonic:
                return row
        raise ConfigError(f"harmonic {harmonic} not in report")


def measure_distortion(
    analyzer: NetworkAnalyzer,
    fwave: float,
    harmonics: tuple[int, ...] = (2, 3),
    m_periods: int = 400,
    correct_leakage: bool | None = None,
) -> DistortionReport:
    """Run the Fig. 10c experiment on an analyzer's DUT.

    Parameters
    ----------
    analyzer:
        The network analyzer bound to the (typically nonlinear) DUT.
    fwave:
        Stimulus frequency (the paper uses 1.6 kHz into the 1 kHz LPF).
    harmonics:
        Distortion harmonics to report (>= 2).
    m_periods:
        Evaluation window (the paper uses 400 periods here).
    """
    if any(k < 2 for k in harmonics):
        raise ConfigError(f"distortion harmonics must be >= 2, got {harmonics}")
    ks = [1] + sorted(harmonics)
    measured = analyzer.measure_harmonics(
        fwave, ks, m_periods=m_periods, correct_leakage=correct_leakage
    )
    fundamental = measured[1].amplitude

    # Oscilloscope reference: coherent FFT of the very same response.
    response = analyzer.acquire_response(fwave, m_periods=m_periods)
    mn = m_periods * measured[1].signature.oversampling_ratio
    spectrum = Spectrum.from_waveform(response.slice_samples(0, mn))
    reference = metrics.harmonic_levels_dbc(
        spectrum, fwave, n_harmonics=max(harmonics)
    )

    rows = []
    for k in sorted(harmonics):
        level = bounded_db((measured[k].amplitude / fundamental).clamp_nonnegative())
        rows.append(
            HarmonicDistortionMeasurement(
                harmonic=k,
                amplitude=measured[k].amplitude,
                level_dbc=level,
                reference_dbc=reference.get(k, float("-inf")),
            )
        )
    return DistortionReport(
        fwave=fwave,
        m_periods=m_periods,
        fundamental_amplitude=fundamental.value,
        rows=tuple(rows),
    )
