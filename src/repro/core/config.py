"""Analyzer configuration.

One :class:`AnalyzerConfig` fixes everything about the analyzer except
the master clock (the tuning knob) and the DUT: modulator references,
evaluation window sizes, settling policies, and which non-idealities are
simulated.  Two factory configurations cover the common cases:

* :meth:`AnalyzerConfig.ideal` — mathematically clean blocks; used to
  verify the architecture's exact properties (bounds, synchronization,
  calibration invariance);
* :meth:`AnalyzerConfig.typical` — 0.35 um-flavoured non-idealities
  (mismatch, finite gain, offsets, noise); used to reproduce the lab
  figures (SFDR/THD, Fig. 9 spread).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..errors import ConfigError
from ..evaluator.dsp import PAPER_EPSILON
from ..evaluator.sigma_delta import PAPER_INTEGRATOR_GAIN
from ..sc.mismatch import MismatchModel
from ..sc.opamp import OpAmpModel
from ..units import DEFAULT_VREF


@dataclass(frozen=True)
class AnalyzerConfig:
    """Static configuration of the network analyzer.

    Parameters
    ----------
    vref:
        Sigma-delta reference voltage (volts); also the evaluator's
        full-scale.
    sd_gain:
        Modulator integrator gain ``CI/CF`` (paper: 0.4).
    epsilon:
        Signature error bound used by the DSP (counts; paper: 4).
    m_periods:
        Default evaluation window in signal periods (paper Fig. 10: 200).
    stimulus_amplitude:
        Default generated tone amplitude (volts).  Must stay within the
        evaluator's stable range including DUT gain peaking.
    generator_settle_periods:
        Output periods discarded for generator settling.
    dut_settle_tolerance:
        The DUT transient is allowed to decay to this relative level
        before signature integration starts.
    chopped:
        Offset-cancelling chopped counting (False only for ablation).
    harmonic_leakage_correction:
        Remove odd-harmonic square-wave leakage in multi-harmonic
        measurements.
    generator_opamp, evaluator_opamp:
        Amplifier models (None = ideal).
    mismatch:
        Capacitor mismatch model for the generator die (None = nominal).
    evaluator_offset2:
        Extra offset of the quadrature channel relative to
        ``evaluator_opamp`` — models the "matched" pair's residual
        mismatch.
    noise_seed:
        Seed of the analyzer's noise RNG; ``None`` disables noise even if
        the amplifier models carry noise figures.
    random_modulator_state:
        Start each measurement from a random (power-up) integrator state
        instead of zero; reproduces the run-to-run spread of Fig. 9.
    image_compensation:
        Apply the architecture-derived systematic corrections (exact
        calibration-path image-leakage division, ZOH half-sample phase,
        fundamental droop) and widen the guaranteed intervals by the
        residual image-leakage budget.  See
        :mod:`repro.core.compensation`.
    image_budget_gain:
        Assumed worst-case DUT gain at the stimulus image frequencies
        relative to its gain at the test tone, used for interval
        widening.  1.0 suits low-pass/flat DUTs; raise it for DUTs that
        amplify high frequencies relative to the test tone (e.g. a
        measurement deep in a notch).
    """

    vref: float = DEFAULT_VREF
    sd_gain: float = PAPER_INTEGRATOR_GAIN
    epsilon: float = PAPER_EPSILON
    m_periods: int = 200
    stimulus_amplitude: float = 0.3
    generator_settle_periods: int = 12
    dut_settle_tolerance: float = 1e-6
    chopped: bool = True
    harmonic_leakage_correction: bool = False
    generator_opamp: OpAmpModel | None = None
    evaluator_opamp: OpAmpModel | None = None
    mismatch: MismatchModel | None = None
    evaluator_offset2: float = 0.0
    noise_seed: int | None = None
    random_modulator_state: bool = False
    image_compensation: bool = True
    image_budget_gain: float = 1.0

    def __post_init__(self) -> None:
        if not self.vref > 0:
            raise ConfigError(f"vref must be positive, got {self.vref!r}")
        if not self.sd_gain > 0:
            raise ConfigError(f"sd_gain must be positive, got {self.sd_gain!r}")
        if self.epsilon < 0:
            raise ConfigError(f"epsilon must be >= 0, got {self.epsilon!r}")
        if self.m_periods < 1:
            raise ConfigError(f"m_periods must be >= 1, got {self.m_periods}")
        if self.chopped and self.m_periods % 2 != 0:
            raise ConfigError(
                f"chopped counting requires even m_periods, got {self.m_periods}"
            )
        if not self.stimulus_amplitude > 0:
            raise ConfigError(
                f"stimulus amplitude must be positive, got {self.stimulus_amplitude!r}"
            )
        if self.stimulus_amplitude > self.vref:
            raise ConfigError(
                f"stimulus amplitude {self.stimulus_amplitude} V exceeds the "
                f"evaluator stable range (vref = {self.vref} V)"
            )
        if self.generator_settle_periods < 0:
            raise ConfigError(
                f"generator_settle_periods must be >= 0, "
                f"got {self.generator_settle_periods}"
            )
        if not 0 < self.dut_settle_tolerance < 1:
            raise ConfigError(
                f"dut_settle_tolerance must be in (0, 1), "
                f"got {self.dut_settle_tolerance!r}"
            )
        if not self.image_budget_gain >= 0:
            raise ConfigError(
                f"image_budget_gain must be >= 0, got {self.image_budget_gain!r}"
            )

    # ------------------------------------------------------------------
    @classmethod
    def ideal(cls, **overrides) -> "AnalyzerConfig":
        """Mathematically clean configuration."""
        return cls(**overrides)

    @classmethod
    def typical(cls, seed: int = 2008, **overrides) -> "AnalyzerConfig":
        """0.35 um-flavoured non-idealities (one simulated die).

        The seed selects the die (mismatch draw) and the noise stream.
        """
        defaults = dict(
            generator_opamp=OpAmpModel.folded_cascode_035um(offset=0.5e-3),
            evaluator_opamp=OpAmpModel.folded_cascode_035um(offset=1.0e-3),
            mismatch=MismatchModel(sigma_unit=0.001, seed=seed),
            evaluator_offset2=0.2e-3,
            noise_seed=seed,
            random_modulator_state=True,
        )
        defaults.update(overrides)
        return cls(**defaults)

    def with_m_periods(self, m_periods: int) -> "AnalyzerConfig":
        """A copy with a different evaluation window."""
        return replace(self, m_periods=m_periods)

    def with_amplitude(self, amplitude: float) -> "AnalyzerConfig":
        """A copy with a different stimulus amplitude."""
        return replace(self, stimulus_amplitude=amplitude)
