"""Bode measurement results (the paper's Fig. 10a/b).

A :class:`BodeResult` aggregates the per-frequency
:class:`~repro.core.measurement.GainPhaseMeasurement` points and offers
the views the paper plots: gain in dB with error bands, phase in degrees
with error bands, and comparison against an analytic ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError
from ..dut.base import DUT
from .measurement import GainPhaseMeasurement


@dataclass(frozen=True)
class BodeResult:
    """An ordered collection of Bode points."""

    points: tuple[GainPhaseMeasurement, ...]

    def __post_init__(self) -> None:
        points = tuple(self.points)
        if not points:
            raise ConfigError("BodeResult needs at least one point")
        freqs = [p.fwave for p in points]
        if any(b <= a for a, b in zip(freqs, freqs[1:])):
            raise ConfigError("Bode points must be strictly increasing in frequency")
        object.__setattr__(self, "points", points)

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self):
        return iter(self.points)

    # ------------------------------------------------------------------
    # Series views
    # ------------------------------------------------------------------
    def frequencies(self) -> np.ndarray:
        return np.array([p.fwave for p in self.points])

    def gain_db(self) -> np.ndarray:
        return np.array([p.gain_db.value for p in self.points])

    def gain_db_bounds(self) -> tuple[np.ndarray, np.ndarray]:
        lows = np.array([p.gain_db.lower for p in self.points])
        highs = np.array([p.gain_db.upper for p in self.points])
        return lows, highs

    def phase_deg(self) -> np.ndarray:
        return np.array([p.phase_deg.value for p in self.points])

    def phase_deg_bounds(self) -> tuple[np.ndarray, np.ndarray]:
        lows = np.array([p.phase_deg.lower for p in self.points])
        highs = np.array([p.phase_deg.upper for p in self.points])
        return lows, highs

    # ------------------------------------------------------------------
    # Ground-truth comparison
    # ------------------------------------------------------------------
    def truth_gain_db(self, dut: DUT) -> np.ndarray:
        """Analytic gain of a DUT at the measured frequencies."""
        h = dut.frequency_response(self.frequencies())
        mag = np.abs(h)
        with np.errstate(divide="ignore"):
            return 20.0 * np.log10(mag)

    def truth_phase_deg(self, dut: DUT) -> np.ndarray:
        """Analytic phase of a DUT at the measured frequencies (unwrapped)."""
        h = dut.frequency_response(self.frequencies())
        return np.degrees(np.unwrap(np.angle(h)))

    def gain_error_db(self, dut: DUT) -> np.ndarray:
        """Measured minus analytic gain, dB."""
        return self.gain_db() - self.truth_gain_db(dut)

    def phase_error_deg(self, dut: DUT) -> np.ndarray:
        """Measured minus analytic phase, degrees."""
        return self.phase_deg() - self.truth_phase_deg(dut)

    def truth_within_bounds(self, dut: DUT, slack_db: float = 0.0) -> bool:
        """True if the analytic response lies inside every error band.

        ``slack_db`` loosens the check for configurations with analog
        non-idealities (where the *measured system* differs slightly from
        the nominal analytic DUT — as in the lab).
        """
        truth_gain = self.truth_gain_db(dut)
        lo, hi = self.gain_db_bounds()
        return bool(np.all(truth_gain >= lo - slack_db) and np.all(truth_gain <= hi + slack_db))
