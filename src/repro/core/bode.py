"""Bode measurement results (the paper's Fig. 10a/b).

A :class:`BodeResult` aggregates the per-frequency
:class:`~repro.core.measurement.GainPhaseMeasurement` points and offers
the views the paper plots: gain in dB with error bands, phase in degrees
with error bands, and comparison against an analytic ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError
from ..dut.base import DUT
from .measurement import GainPhaseMeasurement


@dataclass(frozen=True)
class BodeResult:
    """An ordered collection of Bode points."""

    points: tuple[GainPhaseMeasurement, ...]

    def __post_init__(self) -> None:
        points = tuple(self.points)
        if not points:
            raise ConfigError("BodeResult needs at least one point")
        freqs = [p.fwave for p in points]
        if any(b <= a for a, b in zip(freqs, freqs[1:])):
            raise ConfigError("Bode points must be strictly increasing in frequency")
        object.__setattr__(self, "points", points)

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self):
        return iter(self.points)

    # ------------------------------------------------------------------
    # Series views
    # ------------------------------------------------------------------
    def frequencies(self) -> np.ndarray:
        return np.array([p.fwave for p in self.points])

    def gain_db(self) -> np.ndarray:
        return np.array([p.gain_db.value for p in self.points])

    def gain_db_bounds(self) -> tuple[np.ndarray, np.ndarray]:
        lows = np.array([p.gain_db.lower for p in self.points])
        highs = np.array([p.gain_db.upper for p in self.points])
        return lows, highs

    def _phase_offsets_deg(self) -> np.ndarray:
        """Per-point multiples of 360 degrees that unwrap the measured trace.

        Each point's phase estimate comes from an ``atan2`` centred in
        ``(-180, 180]``; a smooth response crossing ``-180`` degrees
        therefore shows a spurious ``+360`` jump between neighbouring
        points.  The same ``np.unwrap`` policy already applied to the
        analytic reference (:meth:`truth_phase_deg`) is applied here:
        whenever consecutive values jump by more than half a turn, all
        later points shift by a whole number of turns.  Offsets are
        exact multiples of 360, applied identically to values and
        bounds, so each interval keeps its width and stays a band
        around its point.

        Deep-stopband points whose phase is unconstrained (interval
        width of a full turn or more — the estimate is essentially
        noise) are *bridged*: they inherit the running offset but never
        contribute a turn, so one meaningless point cannot shift every
        valid point after it by 360 degrees.
        """
        values = np.array([p.phase_deg.value for p in self.points])
        constrained = np.array(
            [p.phase_deg.width < 360.0 for p in self.points]
        )
        offsets = np.zeros(len(values))
        turns = 0.0
        previous = None  # raw value of the last constrained point
        for i, value in enumerate(values):
            if constrained[i]:
                if previous is not None:
                    turns -= np.round((value - previous) / 360.0)
                previous = value
            offsets[i] = 360.0 * turns
        return offsets

    def phase_deg(self) -> np.ndarray:
        """Measured phase in degrees, unwrapped across the branch cut."""
        values = np.array([p.phase_deg.value for p in self.points])
        return values + self._phase_offsets_deg()

    def phase_deg_bounds(self) -> tuple[np.ndarray, np.ndarray]:
        """Error-band bounds, shifted by the same unwrap offsets as
        :meth:`phase_deg` so the bands stay contiguous."""
        offsets = self._phase_offsets_deg()
        lows = np.array([p.phase_deg.lower for p in self.points]) + offsets
        highs = np.array([p.phase_deg.upper for p in self.points]) + offsets
        return lows, highs

    # ------------------------------------------------------------------
    # Ground-truth comparison
    # ------------------------------------------------------------------
    def truth_gain_db(self, dut: DUT) -> np.ndarray:
        """Analytic gain of a DUT at the measured frequencies."""
        h = dut.frequency_response(self.frequencies())
        mag = np.abs(h)
        with np.errstate(divide="ignore"):
            return 20.0 * np.log10(mag)

    def truth_phase_deg(self, dut: DUT) -> np.ndarray:
        """Analytic phase of a DUT at the measured frequencies (unwrapped)."""
        h = dut.frequency_response(self.frequencies())
        return np.degrees(np.unwrap(np.angle(h)))

    def gain_error_db(self, dut: DUT) -> np.ndarray:
        """Measured minus analytic gain, dB."""
        return self.gain_db() - self.truth_gain_db(dut)

    def phase_error_deg(self, dut: DUT) -> np.ndarray:
        """Measured minus analytic phase, degrees."""
        return self.phase_deg() - self.truth_phase_deg(dut)

    def truth_within_bounds(self, dut: DUT, slack_db: float = 0.0) -> bool:
        """True if the analytic response lies inside every error band.

        ``slack_db`` loosens the check for configurations with analog
        non-idealities (where the *measured system* differs slightly from
        the nominal analytic DUT — as in the lab).
        """
        truth_gain = self.truth_gain_db(dut)
        lo, hi = self.gain_db_bounds()
        return bool(np.all(truth_gain >= lo - slack_db) and np.all(truth_gain <= hi + slack_db))
