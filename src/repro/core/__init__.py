"""The network analyzer core — the paper's primary contribution.

Public entry points:

* :class:`~repro.core.analyzer.NetworkAnalyzer` — bind a DUT and a
  configuration, calibrate once, then measure gain/phase points, Bode
  sweeps, and harmonic distortion;
* :class:`~repro.core.config.AnalyzerConfig` — ideal vs typical
  (0.35 um-flavoured) configurations;
* :class:`~repro.core.sweep.FrequencySweepPlan` — master-clock sweep
  plans (including the paper's Fig. 10 sweep);
* :class:`~repro.core.bode.BodeResult` — Bode series with error bands;
* :func:`~repro.core.distortion.measure_distortion` — the Fig. 10c
  experiment;
* :mod:`~repro.core.dynamic_range` — the 70 dB dynamic-range
  characterization.
"""

from .analyzer import NetworkAnalyzer
from .bode import BodeResult
from .calibration import CalibrationResult
from .config import AnalyzerConfig
from .distortion import DistortionReport, measure_distortion
from .dynamic_range import (
    DynamicRangeResult,
    evaluator_dynamic_range,
    system_dynamic_range,
    theoretical_floor_dbc,
)
from .measurement import (
    GainPhaseMeasurement,
    HarmonicDistortionMeasurement,
    StimulusMeasurement,
    bounded_db,
)
from .sweep import FrequencySweepPlan
from .thd import THDReport, measure_thd
from .fitting import (
    ParameterScreen,
    SecondOrderFit,
    fit_second_order_lowpass,
    parameter_screen,
)

__all__ = [
    "NetworkAnalyzer",
    "AnalyzerConfig",
    "CalibrationResult",
    "BodeResult",
    "FrequencySweepPlan",
    "GainPhaseMeasurement",
    "StimulusMeasurement",
    "HarmonicDistortionMeasurement",
    "bounded_db",
    "DistortionReport",
    "measure_distortion",
    "DynamicRangeResult",
    "evaluator_dynamic_range",
    "system_dynamic_range",
    "theoretical_floor_dbc",
    "THDReport",
    "measure_thd",
    "SecondOrderFit",
    "ParameterScreen",
    "fit_second_order_lowpass",
    "parameter_screen",
]
