"""The network analyzer: generator -> DUT -> evaluator, plus calibration.

Orchestrates a complete measurement exactly the way the paper's system
operates (Fig. 1):

1. the master clock is set for the requested tone frequency
   (``feva = 96 fwave``);
2. the sinewave generator synthesizes the stimulus; its held output
   drives either the DUT or, on the calibration path, the evaluator
   directly;
3. the evaluator modulates, encodes and counts over ``M`` periods, after
   discarding the generator settling and the DUT's own transient
   (an integer number of periods, to preserve the phase reference);
4. the signature DSP converts counts into bounded amplitude/phase, and
   the calibration arithmetic of Section III.C converts stimulus/response
   pairs into bounded DUT gain and phase.

One analyzer instance simulates one physical board: the same generator
die (mismatch draw) and amplifier population is reused at every sweep
point, which is what makes the one-off calibration meaningful.
"""

from __future__ import annotations

import math

import numpy as np

from ..clocking.master import ClockTree
from ..dut.base import DUT, PassthroughDUT
from ..errors import CalibrationError, ConfigError
from ..evaluator.dsp import SignatureDSP
from ..evaluator.evaluator import SinewaveEvaluator
from ..evaluator.harmonics import (
    HarmonicMeasurement,
    measure_harmonics as _measure_harmonics_impl,
)
from ..generator.sinewave_generator import SinewaveGenerator
from ..sc.mismatch import MismatchModel
from ..sc.opamp import OpAmpModel
from ..signals.waveform import Waveform
from .calibration import CalibrationResult
from .config import AnalyzerConfig
from .measurement import GainPhaseMeasurement, StimulusMeasurement


def build_evaluator(
    config: AnalyzerConfig, rng: np.random.Generator | None
) -> SinewaveEvaluator:
    """The analyzer's evaluator wiring for a configuration.

    The single source of truth for how an :class:`AnalyzerConfig` maps
    onto a :class:`~repro.evaluator.evaluator.SinewaveEvaluator`
    (including the quadrature channel's residual offset).  Shared by
    :class:`NetworkAnalyzer` and the vectorized population backend
    (:mod:`repro.engine.vectorized`), whose exact-equivalence contract
    depends on both paths building identical evaluators.
    """
    opamp1 = config.evaluator_opamp
    if config.evaluator_offset2 != 0.0:
        import dataclasses

        base = opamp1 if opamp1 is not None else OpAmpModel.ideal()
        opamp2 = dataclasses.replace(
            base, offset=base.offset + config.evaluator_offset2
        )
    else:
        opamp2 = opamp1
    return SinewaveEvaluator(
        vref=config.vref,
        gain=config.sd_gain,
        opamp1=opamp1,
        opamp2=opamp2,
        rng=rng,
        chopped=config.chopped,
    )


class NetworkAnalyzer:
    """On-chip network analyzer bound to one DUT.

    Parameters
    ----------
    dut:
        The device under test.
    config:
        Static analyzer configuration (defaults to the ideal setup).
    """

    def __init__(self, dut: DUT, config: AnalyzerConfig | None = None) -> None:
        self.dut = dut
        self.config = config if config is not None else AnalyzerConfig.ideal()
        self._rng = (
            np.random.default_rng(self.config.noise_seed)
            if self.config.noise_seed is not None
            else None
        )
        self._dsp = SignatureDSP(self.config.epsilon)
        self._calibration: CalibrationResult | None = None

    # ------------------------------------------------------------------
    # Block construction
    # ------------------------------------------------------------------
    def _fresh_mismatch(self) -> MismatchModel | None:
        """Same die at every sweep point: re-seeded model per build."""
        template = self.config.mismatch
        if template is None:
            return None
        return MismatchModel(sigma_unit=template.sigma_unit, seed=template.seed)

    def _build_generator(self, clock: ClockTree) -> SinewaveGenerator:
        cfg = self.config
        generator = SinewaveGenerator(
            clock,
            opamp1=cfg.generator_opamp,
            opamp2=cfg.generator_opamp,
            mismatch=self._fresh_mismatch(),
            rng=self._rng,
        )
        generator.set_amplitude(cfg.stimulus_amplitude)
        return generator

    def _build_evaluator(self) -> SinewaveEvaluator:
        return build_evaluator(self.config, self._rng)

    def _initial_states(self, evaluator: SinewaveEvaluator) -> tuple[float, float]:
        if not self.config.random_modulator_state or self._rng is None:
            return (0.0, 0.0)
        bound = 0.5 * evaluator.channel1.state_bound
        return (
            float(self._rng.uniform(-bound, bound)),
            float(self._rng.uniform(-bound, bound)),
        )

    def _dut_settle_periods(self, dut: DUT, fwave: float) -> int:
        settle = getattr(dut, "settling_time", None)
        if settle is None:
            return 0
        seconds = settle(self.config.dut_settle_tolerance)
        return int(math.ceil(seconds * fwave))

    # ------------------------------------------------------------------
    # Single-tone acquisition
    # ------------------------------------------------------------------
    def measure_stimulus(
        self,
        fwave: float,
        through_dut: bool = True,
        m_periods: int | None = None,
        harmonic: int = 1,
    ) -> StimulusMeasurement:
        """Acquire amplitude and phase of one tone path.

        ``through_dut=False`` selects the calibration bypass.
        """
        m = m_periods if m_periods is not None else self.config.m_periods
        clock = ClockTree.from_fwave(fwave)
        route: DUT = self.dut if through_dut else PassthroughDUT()
        signal = self._acquire_response(clock, route, m)
        evaluator = self._build_evaluator()
        u0 = self._initial_states(evaluator)
        signature = evaluator.measure(signal, harmonic=harmonic, m_periods=m, u0=u0)
        estimate = self._dsp.components(signature)
        amplitude = estimate.amplitude
        phase = estimate.phase
        if self.config.image_compensation and harmonic >= 1:
            amplitude, phase = self._compensate(
                amplitude, phase, harmonic, clock, route
            )
        return StimulusMeasurement(
            fwave=fwave,
            amplitude=amplitude,
            phase=phase,
            signature=signature,
        )

    def _compensate(self, amplitude, phase, harmonic, clock: ClockTree, route: DUT):
        """Architecture-derived systematic corrections + honest widening.

        See :mod:`repro.core.compensation`.  Sample-domain routes (the
        calibration bypass) get the exact self-leakage division; analog
        routes get the ZOH delay/droop correction plus interval widening
        for the unknowable image transmission through the DUT.
        """
        from . import compensation

        n = clock.oversampling_ratio
        budget = compensation.leakage_budget(harmonic, n)
        if route.responds_continuous:
            if harmonic == 1:
                amplitude = amplitude.scale(
                    1.0 / compensation.zoh_fundamental_droop(n)
                )
            phase = phase.shift(harmonic * compensation.zoh_phase_offset(n))
            widen_amp = (
                budget
                * self.config.image_budget_gain
                * self.config.stimulus_amplitude
            )
            residual_fraction = 1.0
        else:
            if harmonic == 1:
                factor = compensation.bypass_response(
                    1, self.config_generator_caps()
                )
                amplitude = amplitude.scale(1.0 / abs(factor))
                phase = phase.shift(-math.atan2(factor.imag, factor.real))
            # For k >= 2 the bypass reading is pure, *known* leakage;
            # subtracting it needs the fundamental phasor, so it is done
            # by callers holding a calibration (see
            # repro.core.dynamic_range.system_dynamic_range).  The exact
            # k = 1 division removes the nominal leakage; mismatch and
            # amplifier errors perturb it by a small fraction.
            widen_amp = 0.1 * budget * self.config.stimulus_amplitude
        amplitude = amplitude.widen(widen_amp).clamp_nonnegative()
        reference = max(amplitude.value, widen_amp, 1e-15)
        phase = phase.widen(min(widen_amp / reference, math.pi))
        return amplitude, phase

    def config_generator_caps(self):
        """Nominal generator capacitors (for design-constant lookups)."""
        from ..generator.design import PAPER_CAPACITORS

        return PAPER_CAPACITORS

    def _acquire_response(self, clock: ClockTree, route: DUT, m_periods: int) -> Waveform:
        """Generate the stimulus and run it through a signal route."""
        lead = self._dut_settle_periods(route, clock.fwave)
        generator = self._build_generator(clock)
        held = generator.render_held(
            n_periods=lead + m_periods,
            settle_periods=self.config.generator_settle_periods,
        )
        route.reset()
        response = route.process(held)
        return response.slice_samples(lead * clock.oversampling_ratio)

    def acquire_response(
        self, fwave: float, m_periods: int | None = None, through_dut: bool = True
    ) -> Waveform:
        """The raw steady-state waveform the evaluator would see.

        Exposed for reference instrumentation (the oscilloscope stand-in
        of Fig. 10c computes its FFT from exactly this signal).
        """
        m = m_periods if m_periods is not None else self.config.m_periods
        clock = ClockTree.from_fwave(fwave)
        route: DUT = self.dut if through_dut else PassthroughDUT()
        return self._acquire_response(clock, route, m)

    # ------------------------------------------------------------------
    # Calibration (Section III.C)
    # ------------------------------------------------------------------
    def calibrate(
        self, fwave: float, m_periods: int | None = None
    ) -> CalibrationResult:
        """Characterize the test input on the bypass path (done once)."""
        measurement = self.measure_stimulus(
            fwave, through_dut=False, m_periods=m_periods
        )
        calibration = CalibrationResult.from_measurement(
            measurement, self.config.stimulus_amplitude
        )
        self._calibration = calibration
        return calibration

    @property
    def calibration(self) -> CalibrationResult | None:
        """The stored calibration, if any."""
        return self._calibration

    def use_calibration(self, calibration: CalibrationResult) -> None:
        """Adopt a calibration acquired elsewhere (e.g. the engine cache).

        The paper's calibration characterizes the *test input*, which
        depends only on the analyzer configuration — never on the DUT —
        so a calibration acquired by one analyzer instance is valid for
        any other instance with an equal config.
        """
        if not isinstance(calibration, CalibrationResult):
            raise ConfigError(
                f"expected a CalibrationResult, got {type(calibration).__name__}"
            )
        self._calibration = calibration

    # ------------------------------------------------------------------
    # Gain/phase measurement
    # ------------------------------------------------------------------
    def measure_gain_phase(
        self,
        fwave: float,
        m_periods: int | None = None,
        calibration: CalibrationResult | None = None,
    ) -> GainPhaseMeasurement:
        """One Bode point: bounded DUT gain and phase at ``fwave``."""
        cal = calibration if calibration is not None else self._calibration
        if cal is None:
            raise CalibrationError(
                "no calibration available; run calibrate() first (the paper's "
                "one-off bypass measurement)"
            )
        cal.check_amplitude_setting(self.config.stimulus_amplitude)
        output = self.measure_stimulus(fwave, through_dut=True, m_periods=m_periods)
        gain = (output.amplitude / cal.amplitude).clamp_nonnegative()
        phase = output.phase - cal.phase
        return GainPhaseMeasurement(
            fwave=fwave,
            gain=gain,
            phase_rad=phase,
            output=output,
            reference=StimulusMeasurement(
                fwave=fwave,
                amplitude=cal.amplitude,
                phase=cal.phase,
                signature=output.signature,
            ),
        )

    def bode(
        self,
        frequencies,
        m_periods: int | None = None,
        calibration: CalibrationResult | None = None,
        n_workers: int | None = None,  # repro: allow[REP002]: documented deprecation shim — forwards to Session.sweep
        backend: str | None = None,  # repro: allow[REP002]: documented deprecation shim — forwards to Session.sweep
    ) -> list[GainPhaseMeasurement]:
        """Sweep the master clock over a list of tone frequencies.

        A thin shim over the unified session layer
        (:meth:`repro.api.session.Session.sweep`): each sweep point is
        an independent job with its own derived noise substream, results
        bit-identical at any worker count or backend (and returned in
        the requested frequency order).  The historical
        ``n_workers=``/``backend=`` kwargs are deprecated — they emit a
        :class:`DeprecationWarning` and forward to a one-shot session
        with bit-identical results.  Prefer::

            from repro.api import ExecutionPolicy, Session

            Session(dut, config, ExecutionPolicy(n_workers=4)).bode([...])
        """
        from ..api.session import legacy_session

        frequencies = list(frequencies)
        if not frequencies:
            raise ConfigError("frequency list is empty")
        cal = calibration if calibration is not None else self._calibration
        if cal is None:
            raise CalibrationError(
                "no calibration available; run calibrate() first (the paper's "
                "one-off bypass measurement)"
            )
        session = legacy_session(
            "NetworkAnalyzer.bode",
            n_workers=n_workers,
            backend=backend,
            dut=self.dut,
            config=self.config,
        )
        return session.sweep(
            frequencies, m_periods=m_periods, calibration=cal
        ).raw

    # ------------------------------------------------------------------
    # DC level (the evaluator's k = 0 mode: DUT offset testing)
    # ------------------------------------------------------------------
    def measure_dc_level(
        self,
        fwave: float,
        m_periods: int | None = None,
        through_dut: bool = True,
    ):
        """Bounded DC level of the DUT response (paper eq. (3)).

        The stimulus tone integrates to zero over the window; what
        remains is the DUT's output offset — a standard BIST screen for
        analog blocks.  The evaluator's own offset is cancelled by the
        chopped counting, so this genuinely measures the DUT.
        """
        m = m_periods if m_periods is not None else self.config.m_periods
        clock = ClockTree.from_fwave(fwave)
        route: DUT = self.dut if through_dut else PassthroughDUT()
        signal = self._acquire_response(clock, route, m)
        evaluator = self._build_evaluator()
        u0 = self._initial_states(evaluator)
        signature = evaluator.measure_dc(signal, m_periods=m, u0=u0)
        return self._dsp.dc_level(signature)

    # ------------------------------------------------------------------
    # Harmonic distortion (Section IV.C / Fig. 10c)
    # ------------------------------------------------------------------
    def measure_harmonics(
        self,
        fwave: float,
        harmonics: list[int],
        m_periods: int | None = None,
        correct_leakage: bool | None = None,
    ) -> dict[int, HarmonicMeasurement]:
        """Measure several harmonics of the DUT response to one stimulus."""
        m = m_periods if m_periods is not None else self.config.m_periods
        clock = ClockTree.from_fwave(fwave)
        signal = self._acquire_response(clock, self.dut, m)
        evaluator = self._build_evaluator()
        u0 = self._initial_states(evaluator)
        correct = (
            correct_leakage
            if correct_leakage is not None
            else self.config.harmonic_leakage_correction
        )
        return _measure_harmonics_impl(
            evaluator,
            signal,
            harmonics,
            m,
            dsp=self._dsp,
            u0=u0,
            correct_leakage=correct,
        )
