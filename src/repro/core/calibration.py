"""The calibration path (paper Fig. 1, dashed arrow; Section III.C).

Bypassing the DUT feeds the generated stimulus directly to the evaluator,
which characterizes the *test input*: its amplitude and its phase
relative to the modulating square wave.  DUT gain is then the ratio of
output to input amplitudes and DUT phase the difference of phases.

Because the whole analyzer is one synchronous discrete-time system scaled
by the master clock, the stimulus amplitude and phase *in clock-relative
terms* are the same at every sweep frequency — "this calibration only
needs to be performed once".  The reproduction verifies this invariance
explicitly (bench CAL).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import CalibrationError, ConfigError
from ..intervals import BoundedValue
from .measurement import StimulusMeasurement


@dataclass(frozen=True)
class CalibrationResult:
    """The one-off stimulus characterization.

    Attributes
    ----------
    amplitude:
        Bounded stimulus amplitude at the evaluator input (volts).
    phase:
        Bounded stimulus phase relative to the square-wave reference
        (radians).
    fwave:
        Tone frequency at which calibration was acquired (the paper's
        point: the result is valid at *all* frequencies).
    m_periods:
        Evaluation window used.
    stimulus_amplitude_setting:
        The amplitude the generator was programmed for (volts).
    """

    amplitude: BoundedValue
    phase: BoundedValue
    fwave: float
    m_periods: int
    stimulus_amplitude_setting: float

    def __post_init__(self) -> None:
        if not self.fwave > 0:
            raise ConfigError(f"fwave must be positive, got {self.fwave!r}")
        if self.m_periods < 1:
            raise ConfigError(f"m_periods must be >= 1, got {self.m_periods}")
        if self.amplitude.upper <= 0:
            raise CalibrationError(
                "calibration measured a non-positive stimulus amplitude; "
                "the generator is not producing a tone"
            )

    @classmethod
    def from_measurement(
        cls, measurement: StimulusMeasurement, stimulus_amplitude_setting: float
    ) -> "CalibrationResult":
        return cls(
            amplitude=measurement.amplitude,
            phase=measurement.phase,
            fwave=measurement.fwave,
            m_periods=measurement.signature.m_periods,
            stimulus_amplitude_setting=stimulus_amplitude_setting,
        )

    def check_amplitude_setting(self, expected: float, tolerance: float = 0.05) -> None:
        """Guard against using a calibration taken at another amplitude.

        Gain is a ratio, so in a perfectly linear system the calibration
        amplitude would not matter; the guard catches the gross mistakes
        (re-programmed generator without re-calibration).
        """
        if expected <= 0:
            raise ConfigError(f"expected amplitude must be positive, got {expected!r}")
        rel = abs(self.stimulus_amplitude_setting - expected) / expected
        if rel > tolerance:
            raise CalibrationError(
                f"calibration was acquired at a stimulus setting of "
                f"{self.stimulus_amplitude_setting} V but the measurement uses "
                f"{expected} V; re-run calibration"
            )
