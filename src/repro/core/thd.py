"""THD measurement on the network analyzer.

The paper's abstract lists "the harmonic distortion" as a deliverable of
the analyzer; :func:`measure_thd` turns a multi-harmonic acquisition
into a bounded total-harmonic-distortion figure, the single number most
datasheets specify.

Interval semantics: THD is the RSS of the distortion-harmonic amplitude
intervals divided by the fundamental interval, computed with the
library's conservative interval arithmetic — the reported interval is
guaranteed under the same assumptions as the per-harmonic bounds.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError
from ..intervals import BoundedValue
from .analyzer import NetworkAnalyzer
from .measurement import bounded_db


@dataclass(frozen=True)
class THDReport:
    """Bounded THD measurement."""

    fwave: float
    m_periods: int
    n_harmonics: int
    fundamental: BoundedValue  # volts
    thd_ratio: BoundedValue  # dimensionless amplitude ratio
    harmonic_amplitudes: dict  # k -> BoundedValue (volts)

    @property
    def thd_db(self) -> BoundedValue:
        """THD as a *negative* dBc interval (paper quotes the positive
        magnitude: 'THD is 67dB' means -67 dBc here)."""
        return bounded_db(self.thd_ratio)

    @property
    def thd_db_positive(self) -> float:
        """The paper's positive-number convention for the point estimate."""
        return -self.thd_db.value


def measure_thd(
    analyzer: NetworkAnalyzer,
    fwave: float,
    n_harmonics: int = 5,
    m_periods: int | None = None,
    correct_leakage: bool | None = None,
) -> THDReport:
    """Measure the DUT output's THD through the analyzer.

    Harmonics beyond the feasibility condition (``N % 4k != 0``) or the
    Nyquist limit are skipped — with N = 96 the usable set within the
    first five is {2, 3, 4}; request ``n_harmonics >= 6`` to include
    k = 6 and so on.
    """
    if n_harmonics < 2:
        raise ConfigError(f"n_harmonics must be >= 2, got {n_harmonics}")
    from ..clocking.master import OVERSAMPLING_RATIO
    from ..clocking.sequencer import ModulationSequence

    m = m_periods if m_periods is not None else analyzer.config.m_periods
    usable = [
        k
        for k in ModulationSequence.allowed_harmonics(OVERSAMPLING_RATIO, n_harmonics)
        if k >= 2
    ]
    if not usable:
        raise ConfigError(
            f"no measurable harmonics in 2..{n_harmonics} at N = "
            f"{OVERSAMPLING_RATIO}"
        )
    measured = analyzer.measure_harmonics(
        fwave, [1] + usable, m_periods=m, correct_leakage=correct_leakage
    )
    fundamental = measured[1].amplitude
    if fundamental.upper <= 0:
        raise ConfigError("no fundamental measured; THD undefined")
    # RSS of the distortion harmonics with interval arithmetic.
    total_sq = BoundedValue.exact(0.0)
    amplitudes = {}
    for k in usable:
        amp = measured[k].amplitude
        amplitudes[k] = amp
        total_sq = total_sq + amp.square()
    rss = total_sq.sqrt()
    ratio = (rss / fundamental).clamp_nonnegative()
    return THDReport(
        fwave=fwave,
        m_periods=m,
        n_harmonics=n_harmonics,
        fundamental=fundamental,
        thd_ratio=ratio,
        harmonic_amplitudes=amplitudes,
    )
