"""Model-parameter extraction from Bode measurements.

Datasheets specify filters by corner frequency, quality factor and DC
gain — not by pointwise gains.  This module fits a second-order low-pass
model

    ``|H(f)| = g0 / sqrt((1 - (f/f0)^2)^2 + (f/(Q f0))^2)``

to a measured :class:`~repro.core.bode.BodeResult` by weighted least
squares in log-magnitude, weighting each point by the inverse of its
error-band width so the analyzer's own confidence shapes the fit.  The
extracted parameters feed parameter-based screening
(:func:`parameter_screen`), the natural refinement of the pointwise
go/no-go program in :mod:`repro.bist`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy.optimize import least_squares

from ..core.bode import BodeResult
from ..errors import ConfigError, EvaluationError


@dataclass(frozen=True)
class SecondOrderFit:
    """Extracted second-order low-pass parameters."""

    f0: float  # corner frequency, Hz
    q: float  # quality factor
    gain: float  # DC gain magnitude
    residual_db_rms: float  # RMS log-magnitude misfit over used points
    n_points: int

    @property
    def gain_db(self) -> float:
        if self.gain <= 0:
            return float("-inf")
        return 20.0 * math.log10(self.gain)


def _model_mag_db(params, freqs):
    log_f0, log_q, log_g = params
    f0 = np.exp(log_f0)
    q = np.exp(log_q)
    g = np.exp(log_g)
    x = freqs / f0
    mag = g / np.sqrt((1.0 - x * x) ** 2 + (x / q) ** 2)
    return 20.0 * np.log10(np.maximum(mag, 1e-300))


def fit_second_order_lowpass(
    bode: BodeResult,
    min_gain_db: float = -60.0,
) -> SecondOrderFit:
    """Fit a 2nd-order low-pass to a Bode measurement.

    Points whose measured gain is below ``min_gain_db`` (deep stopband,
    where the bounded measurement degenerates) are excluded; at least
    four usable points are required for the three parameters.
    """
    freqs = bode.frequencies()
    gains_db = bode.gain_db()
    lo, hi = bode.gain_db_bounds()
    widths = np.maximum(hi - lo, 1e-3)
    usable = gains_db > min_gain_db
    if int(np.count_nonzero(usable)) < 4:
        raise EvaluationError(
            f"only {int(np.count_nonzero(usable))} usable Bode points above "
            f"{min_gain_db} dB; need at least 4 to fit f0/Q/gain"
        )
    f_used = freqs[usable]
    g_used = gains_db[usable]
    w_used = 1.0 / widths[usable]

    # Initial guess: DC gain from the lowest frequency; f0 where the
    # response drops 3 dB below it; Q from Butterworth.
    g0_db = g_used[0]
    below = f_used[g_used <= g0_db - 3.0]
    f0_guess = float(below[0]) if len(below) else float(f_used[-1])
    x0 = np.array(
        [math.log(f0_guess), math.log(1.0 / math.sqrt(2.0)), g0_db / 20.0 * math.log(10.0)]
    )

    def residuals(params):
        return (_model_mag_db(params, f_used) - g_used) * w_used

    result = least_squares(residuals, x0, method="lm", max_nfev=2000)
    if not result.success:
        raise EvaluationError(f"second-order fit failed: {result.message}")
    f0 = float(np.exp(result.x[0]))
    q = float(np.exp(result.x[1]))
    gain = float(np.exp(result.x[2]))
    misfit = _model_mag_db(result.x, f_used) - g_used
    return SecondOrderFit(
        f0=f0,
        q=q,
        gain=gain,
        residual_db_rms=float(np.sqrt(np.mean(misfit**2))),
        n_points=int(len(f_used)),
    )


@dataclass(frozen=True)
class ParameterScreen:
    """Pass/fail on extracted parameters."""

    fit: SecondOrderFit
    f0_limits: tuple[float, float]
    q_limits: tuple[float, float]
    gain_db_limits: tuple[float, float]

    @property
    def f0_ok(self) -> bool:
        return self.f0_limits[0] <= self.fit.f0 <= self.f0_limits[1]

    @property
    def q_ok(self) -> bool:
        return self.q_limits[0] <= self.fit.q <= self.q_limits[1]

    @property
    def gain_ok(self) -> bool:
        return self.gain_db_limits[0] <= self.fit.gain_db <= self.gain_db_limits[1]

    @property
    def passed(self) -> bool:
        return self.f0_ok and self.q_ok and self.gain_ok


def parameter_screen(
    bode: BodeResult,
    f0_limits: tuple[float, float],
    q_limits: tuple[float, float],
    gain_db_limits: tuple[float, float],
) -> ParameterScreen:
    """Screen a device on its extracted f0/Q/gain."""
    for name, limits in (
        ("f0", f0_limits),
        ("q", q_limits),
        ("gain_db", gain_db_limits),
    ):
        if limits[0] > limits[1]:
            raise ConfigError(f"{name} limits inverted: {limits}")
    fit = fit_second_order_lowpass(bode)
    return ParameterScreen(
        fit=fit,
        f0_limits=f0_limits,
        q_limits=q_limits,
        gain_db_limits=gain_db_limits,
    )
