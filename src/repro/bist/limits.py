"""Frequency-dependent specification masks.

A :class:`SpecMask` is a set of gain-limit segments: at a test frequency
inside a segment, the DUT's gain (in dB) must lie within ``[lo, hi]``.
Masks are built either directly or from a golden DUT plus a tolerance
(the usual way production limits are derived).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..dut.base import DUT
from ..errors import ConfigError


@dataclass(frozen=True)
class MaskSegment:
    """One frequency band with gain limits (dB)."""

    f_lo: float
    f_hi: float
    gain_lo_db: float
    gain_hi_db: float

    def __post_init__(self) -> None:
        if not 0 < self.f_lo <= self.f_hi:
            raise ConfigError(
                f"need 0 < f_lo <= f_hi, got {self.f_lo}..{self.f_hi}"
            )
        if self.gain_lo_db > self.gain_hi_db:
            raise ConfigError(
                f"gain limits inverted: [{self.gain_lo_db}, {self.gain_hi_db}]"
            )

    def covers(self, frequency: float) -> bool:
        return self.f_lo <= frequency <= self.f_hi


@dataclass(frozen=True)
class SpecMask:
    """An ordered set of gain-limit segments."""

    segments: tuple[MaskSegment, ...]

    def __post_init__(self) -> None:
        segments = tuple(self.segments)
        if not segments:
            raise ConfigError("mask needs at least one segment")
        object.__setattr__(self, "segments", segments)

    def limits_at(self, frequency: float) -> tuple[float, float] | None:
        """``(lo_db, hi_db)`` at a frequency, or None if unconstrained."""
        for segment in self.segments:
            if segment.covers(frequency):
                return segment.gain_lo_db, segment.gain_hi_db
        return None

    @classmethod
    def from_golden(
        cls,
        dut: DUT,
        frequencies,
        tolerance_db: float = 1.0,
    ) -> "SpecMask":
        """Limits derived from a golden DUT's analytic response.

        Each test frequency gets a narrow segment centred on the golden
        gain with ``+/- tolerance_db``.
        """
        if tolerance_db <= 0:
            raise ConfigError(f"tolerance_db must be positive, got {tolerance_db!r}")
        frequencies = np.atleast_1d(np.asarray(frequencies, dtype=float))
        if len(frequencies) == 0:
            raise ConfigError("need at least one frequency")
        segments = []
        for f in frequencies:
            gain_db = dut.gain_db_at(float(f))
            segments.append(
                MaskSegment(
                    f_lo=float(f) * 0.999,
                    f_hi=float(f) * 1.001,
                    gain_lo_db=gain_db - tolerance_db,
                    gain_hi_db=gain_db + tolerance_db,
                )
            )
        return cls(tuple(segments))
