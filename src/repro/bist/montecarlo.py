"""Monte-Carlo yield analysis of a BIST program.

The production question behind the paper: given manufacturing spread,
what fraction of devices does the on-chip test pass, and how often does
it disagree with the *true* specification compliance?  The standard
vocabulary:

* **yield** — fraction of devices passing the BIST program;
* **test escape** — a device that violates the true spec but passes the
  test (shipped bad part);
* **overkill** — a device that meets the true spec but fails the test
  (scrapped good part).

Because the analyzer reports *intervals*, the program also produces
"ambiguous" outcomes; the dispositioning policy (retest longer, or
scrap) is a knob exposed here as ``ambiguous_passes``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.config import AnalyzerConfig
from ..dut.active_rc import ActiveRCLowpass, FilterComponents
from .limits import SpecMask
from .program import BISTProgram


@dataclass(frozen=True)
class DeviceTrial:
    """One simulated device through the test program."""

    device_index: int
    verdict: str  # BIST outcome: pass | fail | ambiguous
    truly_good: bool  # analytic response inside the mask everywhere


@dataclass(frozen=True)
class YieldReport:
    """Aggregate Monte-Carlo outcome."""

    trials: tuple[DeviceTrial, ...]
    ambiguous_passes: bool

    def _passes(self, trial: DeviceTrial) -> bool:
        if trial.verdict == "pass":
            return True
        return trial.verdict == "ambiguous" and self.ambiguous_passes

    @property
    def n_devices(self) -> int:
        return len(self.trials)

    @property
    def test_yield(self) -> float:
        """Fraction of devices the BIST ships."""
        if not self.trials:
            return 0.0
        return sum(1 for t in self.trials if self._passes(t)) / len(self.trials)

    @property
    def true_yield(self) -> float:
        """Fraction of devices actually meeting the spec."""
        if not self.trials:
            return 0.0
        return sum(1 for t in self.trials if t.truly_good) / len(self.trials)

    @property
    def escape_rate(self) -> float:
        """Shipped-bad fraction (of all devices)."""
        if not self.trials:
            return 0.0
        escapes = sum(
            1 for t in self.trials if self._passes(t) and not t.truly_good
        )
        return escapes / len(self.trials)

    @property
    def overkill_rate(self) -> float:
        """Scrapped-good fraction (of all devices)."""
        if not self.trials:
            return 0.0
        overkill = sum(
            1 for t in self.trials if not self._passes(t) and t.truly_good
        )
        return overkill / len(self.trials)

    @property
    def ambiguous_rate(self) -> float:
        if not self.trials:
            return 0.0
        return sum(1 for t in self.trials if t.verdict == "ambiguous") / len(
            self.trials
        )


def _truly_good(dut: ActiveRCLowpass, mask: SpecMask, frequencies) -> bool:
    for f in frequencies:
        limits = mask.limits_at(f)
        if limits is None:
            continue
        lo, hi = limits
        gain = dut.gain_db_at(f)
        if not lo <= gain <= hi:
            return False
    return True


def default_yield_config(program: BISTProgram) -> AnalyzerConfig:
    """The default analyzer configuration for a yield program.

    The program's own window when it is even (the chopped evaluator's
    requirement), else the historical 40-period fallback.  One rule,
    shared by :func:`run_yield_analysis` and the CLI ``yield``
    subcommand, so their numbers can never diverge for odd windows.
    """
    return AnalyzerConfig.ideal(
        m_periods=program.m_periods if program.m_periods % 2 == 0 else 40
    )


def run_yield_analysis(
    nominal: FilterComponents,
    mask: SpecMask,
    program: BISTProgram,
    n_devices: int = 50,
    component_sigma: float = 0.02,
    seed: int = 0,
    config: AnalyzerConfig | None = None,
    ambiguous_passes: bool = False,
    n_workers: int | None = None,  # repro: allow[REP002]: documented deprecation shim — forwards to Session.yield_lot
    runner=None,
    backend: str | None = None,  # repro: allow[REP002]: documented deprecation shim — forwards to Session.yield_lot
) -> YieldReport:
    """Simulate a production lot through the BIST program.

    Each device draws i.i.d. Gaussian component values around the
    nominal design (``component_sigma`` relative), runs the go/no-go
    program, and is compared against its *analytic* spec compliance.

    This entry point is a thin shim over the unified session layer:
    execution routes through :meth:`repro.api.session.Session.yield_lot`
    (one shared calibration cache, deterministic per-job seeding, the
    engine's backend/parallelism equivalence contract).  The historical
    ``n_workers=``/``runner=``/``backend=`` kwargs are deprecated — they
    emit a :class:`DeprecationWarning` and forward to a one-shot session
    with bit-identical results.  Prefer::

        from repro.api import ExecutionPolicy, Session

        Session(policy=ExecutionPolicy(n_workers=4)).yield_lot(
            nominal, mask, program, n_devices=50, config=config
        )
    """
    from ..api.session import legacy_session

    config = config if config is not None else default_yield_config(program)
    session = legacy_session(
        "run_yield_analysis",
        n_workers=n_workers,
        backend=backend,
        runner=runner,
    )
    return session.yield_lot(
        nominal,
        mask,
        program,
        n_devices=n_devices,
        component_sigma=component_sigma,
        ambiguous_passes=ambiguous_passes,
        seed=seed,
        config=config,
    ).raw


def yield_analysis(
    nominal: FilterComponents,
    mask: SpecMask,
    program: BISTProgram,
    n_devices: int = 50,
    component_sigma: float = 0.02,
    seed: int = 0,
    config: AnalyzerConfig | None = None,
    ambiguous_passes: bool = False,
) -> YieldReport:
    """Serial-API wrapper over :func:`run_yield_analysis` (one worker)."""
    return run_yield_analysis(
        nominal,
        mask,
        program,
        n_devices=n_devices,
        component_sigma=component_sigma,
        seed=seed,
        config=config,
        ambiguous_passes=ambiguous_passes,
    )
