"""Monte-Carlo yield analysis of a BIST program.

The production question behind the paper: given manufacturing spread,
what fraction of devices does the on-chip test pass, and how often does
it disagree with the *true* specification compliance?  The standard
vocabulary:

* **yield** — fraction of devices passing the BIST program;
* **test escape** — a device that violates the true spec but passes the
  test (shipped bad part);
* **overkill** — a device that meets the true spec but fails the test
  (scrapped good part).

Because the analyzer reports *intervals*, the program also produces
"ambiguous" outcomes; the dispositioning policy (retest longer, or
scrap) is a knob exposed here as ``ambiguous_passes``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.analyzer import NetworkAnalyzer
from ..core.config import AnalyzerConfig
from ..dut.active_rc import ActiveRCLowpass, FilterComponents
from ..errors import ConfigError
from .limits import SpecMask
from .program import BISTProgram


@dataclass(frozen=True)
class DeviceTrial:
    """One simulated device through the test program."""

    device_index: int
    verdict: str  # BIST outcome: pass | fail | ambiguous
    truly_good: bool  # analytic response inside the mask everywhere


@dataclass(frozen=True)
class YieldReport:
    """Aggregate Monte-Carlo outcome."""

    trials: tuple[DeviceTrial, ...]
    ambiguous_passes: bool

    def _passes(self, trial: DeviceTrial) -> bool:
        if trial.verdict == "pass":
            return True
        return trial.verdict == "ambiguous" and self.ambiguous_passes

    @property
    def n_devices(self) -> int:
        return len(self.trials)

    @property
    def test_yield(self) -> float:
        """Fraction of devices the BIST ships."""
        if not self.trials:
            return 0.0
        return sum(1 for t in self.trials if self._passes(t)) / len(self.trials)

    @property
    def true_yield(self) -> float:
        """Fraction of devices actually meeting the spec."""
        if not self.trials:
            return 0.0
        return sum(1 for t in self.trials if t.truly_good) / len(self.trials)

    @property
    def escape_rate(self) -> float:
        """Shipped-bad fraction (of all devices)."""
        if not self.trials:
            return 0.0
        escapes = sum(
            1 for t in self.trials if self._passes(t) and not t.truly_good
        )
        return escapes / len(self.trials)

    @property
    def overkill_rate(self) -> float:
        """Scrapped-good fraction (of all devices)."""
        if not self.trials:
            return 0.0
        overkill = sum(
            1 for t in self.trials if not self._passes(t) and t.truly_good
        )
        return overkill / len(self.trials)

    @property
    def ambiguous_rate(self) -> float:
        if not self.trials:
            return 0.0
        return sum(1 for t in self.trials if t.verdict == "ambiguous") / len(
            self.trials
        )


def _truly_good(dut: ActiveRCLowpass, mask: SpecMask, frequencies) -> bool:
    for f in frequencies:
        limits = mask.limits_at(f)
        if limits is None:
            continue
        lo, hi = limits
        gain = dut.gain_db_at(f)
        if not lo <= gain <= hi:
            return False
    return True


def yield_analysis(
    nominal: FilterComponents,
    mask: SpecMask,
    program: BISTProgram,
    n_devices: int = 50,
    component_sigma: float = 0.02,
    seed: int = 0,
    config: AnalyzerConfig | None = None,
    ambiguous_passes: bool = False,
) -> YieldReport:
    """Simulate a production lot through the BIST program.

    Each device draws i.i.d. Gaussian component values around the
    nominal design (``component_sigma`` relative), runs the go/no-go
    program, and is compared against its *analytic* spec compliance.
    """
    if n_devices < 1:
        raise ConfigError(f"n_devices must be >= 1, got {n_devices}")
    if component_sigma < 0:
        raise ConfigError(f"component_sigma must be >= 0, got {component_sigma!r}")
    config = config if config is not None else AnalyzerConfig.ideal(
        m_periods=program.m_periods if program.m_periods % 2 == 0 else 40
    )
    rng = np.random.default_rng(seed)
    trials = []
    for index in range(n_devices):
        components = nominal.with_tolerance(component_sigma, rng)
        device = ActiveRCLowpass(components, name=f"device #{index}")
        analyzer = NetworkAnalyzer(device, config)
        report = program.run(analyzer)
        trials.append(
            DeviceTrial(
                device_index=index,
                verdict=report.verdict,
                truly_good=_truly_good(device, mask, program.frequencies),
            )
        )
    return YieldReport(trials=tuple(trials), ambiguous_passes=ambiguous_passes)
