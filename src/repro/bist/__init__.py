"""BIST application layer: the reason the analyzer exists.

The paper's motivation (Section I) is production test: moving frequency
response characterization from expensive ATE onto the chip.  This package
closes the loop from *measurement* to *test decision*:

* :class:`~repro.bist.limits.SpecMask` — frequency-dependent gain limits
  (a datasheet-style mask);
* :class:`~repro.bist.program.BISTProgram` — sweep + compare + verdict,
  using the measurement *bounds* so a device is only passed/failed when
  the guaranteed interval is conclusive;
* :mod:`~repro.bist.coverage` — parametric fault-coverage evaluation of
  a test program against a fault catalog;
* :func:`~repro.bist.montecarlo.run_yield_analysis` — Monte-Carlo yield
  analysis of a lot, batch-executed by :mod:`repro.engine` (pass
  ``n_workers`` to parallelize).
"""

from .limits import MaskSegment, SpecMask
from .program import BISTProgram, BISTReport, PointVerdict
from .coverage import CoverageReport, FaultTrial, fault_coverage
from .montecarlo import DeviceTrial, YieldReport, run_yield_analysis, yield_analysis

__all__ = [
    "MaskSegment",
    "SpecMask",
    "BISTProgram",
    "BISTReport",
    "PointVerdict",
    "CoverageReport",
    "FaultTrial",
    "fault_coverage",
    "DeviceTrial",
    "YieldReport",
    "run_yield_analysis",
    "yield_analysis",
]
