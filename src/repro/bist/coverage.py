"""Fault-coverage evaluation.

Runs a BIST program against a catalog of faults of the demonstrator DUT
and reports which are detected.  This is the standard way an analog BIST
scheme's usefulness is quantified, and it exercises the full stack:
fault -> shifted frequency response -> out-of-mask bounded measurement
-> fail verdict.

Execution routes through the unified session layer (:mod:`repro.api`),
which rides the fault-campaign subsystem (:mod:`repro.faults`): the
good device and every faulty one are measured as batch-engine jobs, the
program's one-off calibration is paid once for the entire catalog, and
parallel or vectorized execution is bit-identical to the serial run.
The verdicts are then derived from the measured signatures with exactly
the tri-state interval logic of :class:`~repro.bist.program.BISTProgram`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.config import AnalyzerConfig
from ..dut.active_rc import ActiveRCLowpass
from ..dut.faults import Fault
from .program import BISTProgram, BISTReport, point_verdict


@dataclass(frozen=True)
class FaultTrial:
    """Outcome of testing one faulty device."""

    fault: Fault
    verdict: str
    detected: bool  # fail or ambiguous counts as flagged for review


@dataclass(frozen=True)
class CoverageReport:
    """Aggregate fault-coverage results."""

    trials: tuple[FaultTrial, ...]
    good_verdict: str

    @property
    def coverage(self) -> float:
        """Fraction of faults producing a fail verdict."""
        if not self.trials:
            return 0.0
        detected = sum(1 for t in self.trials if t.verdict == "fail")
        return detected / len(self.trials)

    @property
    def flagged(self) -> float:
        """Fraction at least flagged (fail or ambiguous)."""
        if not self.trials:
            return 0.0
        return sum(1 for t in self.trials if t.detected) / len(self.trials)

    @property
    def escapes(self) -> tuple[FaultTrial, ...]:
        """Faults that passed cleanly (test escapes)."""
        return tuple(t for t in self.trials if t.verdict == "pass")


def signature_report(signature, program: BISTProgram) -> BISTReport:
    """A campaign signature scored against the program's mask.

    Scored at the *program's* frequencies (a program may list one
    frequency twice; the campaign measures it once).  Public because the
    session layer (:meth:`repro.api.session.Session.fault_coverage`)
    derives its verdicts with exactly this scoring.
    """
    by_frequency = {p.frequency: p for p in signature.points}
    points = []
    for f in program.frequencies:
        point = by_frequency[f]
        lo, hi = program.mask.limits_at(f)
        points.append(point_verdict(f, point.gain_db, lo, hi))
    return BISTReport(points=tuple(points))


def fault_coverage(
    good_dut: ActiveRCLowpass,
    faults,
    program: BISTProgram,
    config: AnalyzerConfig | None = None,
    n_workers: int | None = None,  # repro: allow[REP002]: documented deprecation shim — forwards to Session.fault_coverage
    runner=None,
    backend: str | None = None,  # repro: allow[REP002]: documented deprecation shim — forwards to Session.fault_coverage
) -> CoverageReport:
    """Evaluate a BIST program's coverage of a fault catalog.

    A thin shim over the unified session layer: the workload lives in
    :meth:`repro.api.session.Session.fault_coverage` (good device
    measured first and required to pass, one cached calibration for the
    whole catalog, bit-identical at any worker count or backend).  The
    historical ``n_workers=``/``runner=``/``backend=`` kwargs are
    deprecated — they emit a :class:`DeprecationWarning` and forward to
    a one-shot session with bit-identical results.  Prefer::

        from repro.api import ExecutionPolicy, Session

        Session(good_dut, policy=ExecutionPolicy(backend="vectorized"))
            .fault_coverage(faults, program)
    """
    from ..api.session import legacy_session

    config = config if config is not None else AnalyzerConfig.ideal()
    session = legacy_session(
        "fault_coverage", n_workers=n_workers, backend=backend, runner=runner
    )
    return session.fault_coverage(
        faults, program, dut=good_dut, config=config
    ).raw
