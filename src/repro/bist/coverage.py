"""Parametric fault-coverage evaluation.

Runs a BIST program against a catalog of single-component parametric
faults of the demonstrator DUT and reports which are detected.  This is
the standard way an analog BIST scheme's usefulness is quantified, and it
exercises the full stack: fault -> shifted frequency response ->
out-of-mask bounded measurement -> fail verdict.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.analyzer import NetworkAnalyzer
from ..core.config import AnalyzerConfig
from ..dut.active_rc import ActiveRCLowpass
from ..dut.faults import ParametricFault
from ..errors import ConfigError
from .program import BISTProgram


@dataclass(frozen=True)
class FaultTrial:
    """Outcome of testing one faulty device."""

    fault: ParametricFault
    verdict: str
    detected: bool  # fail or ambiguous counts as flagged for review


@dataclass(frozen=True)
class CoverageReport:
    """Aggregate fault-coverage results."""

    trials: tuple[FaultTrial, ...]
    good_verdict: str

    @property
    def coverage(self) -> float:
        """Fraction of faults producing a fail verdict."""
        if not self.trials:
            return 0.0
        detected = sum(1 for t in self.trials if t.verdict == "fail")
        return detected / len(self.trials)

    @property
    def flagged(self) -> float:
        """Fraction at least flagged (fail or ambiguous)."""
        if not self.trials:
            return 0.0
        return sum(1 for t in self.trials if t.detected) / len(self.trials)

    @property
    def escapes(self) -> tuple[FaultTrial, ...]:
        """Faults that passed cleanly (test escapes)."""
        return tuple(t for t in self.trials if t.verdict == "pass")


def fault_coverage(
    good_dut: ActiveRCLowpass,
    faults: list[ParametricFault],
    program: BISTProgram,
    config: AnalyzerConfig | None = None,
) -> CoverageReport:
    """Evaluate a BIST program's coverage of a fault catalog.

    The good device is tested first (it must not fail — otherwise the
    mask is mis-centred and the coverage numbers are meaningless).
    """
    if not faults:
        raise ConfigError("fault list is empty")
    config = config if config is not None else AnalyzerConfig.ideal()

    good_analyzer = NetworkAnalyzer(good_dut, config)
    good_report = program.run(good_analyzer)
    if good_report.verdict == "fail":
        raise ConfigError(
            "the known-good DUT fails the program; mask and DUT are inconsistent"
        )

    trials = []
    for fault in faults:
        faulty = fault.apply(good_dut)
        analyzer = NetworkAnalyzer(faulty, config)
        report = program.run(analyzer)
        trials.append(
            FaultTrial(
                fault=fault,
                verdict=report.verdict,
                detected=report.verdict in ("fail", "ambiguous"),
            )
        )
    return CoverageReport(trials=tuple(trials), good_verdict=good_report.verdict)
