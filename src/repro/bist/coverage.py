"""Fault-coverage evaluation.

Runs a BIST program against a catalog of faults of the demonstrator DUT
and reports which are detected.  This is the standard way an analog BIST
scheme's usefulness is quantified, and it exercises the full stack:
fault -> shifted frequency response -> out-of-mask bounded measurement
-> fail verdict.

Execution rides the fault-campaign subsystem (:mod:`repro.faults`): the
good device and every faulty one are measured as batch-engine jobs, the
program's one-off calibration is paid once for the entire catalog, and
``n_workers > 1`` parallelizes the campaign with results bit-identical
to the serial run.  The verdicts are then derived from the measured
signatures with exactly the tri-state interval logic of
:class:`~repro.bist.program.BISTProgram`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.config import AnalyzerConfig
from ..dut.active_rc import ActiveRCLowpass
from ..dut.faults import Fault
from ..errors import ConfigError
from .program import BISTProgram, BISTReport, point_verdict


@dataclass(frozen=True)
class FaultTrial:
    """Outcome of testing one faulty device."""

    fault: Fault
    verdict: str
    detected: bool  # fail or ambiguous counts as flagged for review


@dataclass(frozen=True)
class CoverageReport:
    """Aggregate fault-coverage results."""

    trials: tuple[FaultTrial, ...]
    good_verdict: str

    @property
    def coverage(self) -> float:
        """Fraction of faults producing a fail verdict."""
        if not self.trials:
            return 0.0
        detected = sum(1 for t in self.trials if t.verdict == "fail")
        return detected / len(self.trials)

    @property
    def flagged(self) -> float:
        """Fraction at least flagged (fail or ambiguous)."""
        if not self.trials:
            return 0.0
        return sum(1 for t in self.trials if t.detected) / len(self.trials)

    @property
    def escapes(self) -> tuple[FaultTrial, ...]:
        """Faults that passed cleanly (test escapes)."""
        return tuple(t for t in self.trials if t.verdict == "pass")


def _signature_report(signature, program: BISTProgram) -> BISTReport:
    """A campaign signature scored against the program's mask.

    Scored at the *program's* frequencies (a program may list one
    frequency twice; the campaign measures it once).
    """
    by_frequency = {p.frequency: p for p in signature.points}
    points = []
    for f in program.frequencies:
        point = by_frequency[f]
        lo, hi = program.mask.limits_at(f)
        points.append(point_verdict(f, point.gain_db, lo, hi))
    return BISTReport(points=tuple(points))


def fault_coverage(
    good_dut: ActiveRCLowpass,
    faults,
    program: BISTProgram,
    config: AnalyzerConfig | None = None,
    n_workers: int = 1,
    runner=None,
    backend: str = "reference",
) -> CoverageReport:
    """Evaluate a BIST program's coverage of a fault catalog.

    The good device is measured first and must not fail — otherwise the
    mask is mis-centred, the coverage numbers would be meaningless, and
    the error is raised before the catalog is paid for.
    ``n_workers > 1`` fans the campaign out over worker processes;
    ``backend="vectorized"`` batches the whole catalog as in-process
    array operations instead (see :mod:`repro.engine.vectorized`).
    Pass an existing :class:`~repro.engine.runner.BatchRunner` as
    ``runner`` to share its calibration cache across experiments
    (``n_workers`` and ``backend`` then defer to the runner's own
    settings).
    """
    from ..engine.runner import BatchRunner
    from ..faults.campaign import FaultCampaign, measure_signature

    faults = list(faults)
    if not faults:
        raise ConfigError("fault list is empty")
    config = config if config is not None else AnalyzerConfig.ideal()
    engine = (
        runner
        if runner is not None
        else BatchRunner(n_workers=n_workers, backend=backend)
    )
    frequencies = list(dict.fromkeys(program.frequencies))  # measured once each

    # Fail fast on a mis-centred mask: one job (on the calibration the
    # campaign will reuse) before the whole catalog is paid for.
    good_signature = measure_signature(
        good_dut,
        frequencies,
        config=config,
        m_periods=program.m_periods,
        runner=engine,
    )
    good_report = _signature_report(good_signature, program)
    if good_report.verdict == "fail":
        raise ConfigError(
            "the known-good DUT fails the program; mask and DUT are inconsistent"
        )

    campaign = FaultCampaign(
        good_dut,
        faults,
        frequencies,
        config=config,
        m_periods=program.m_periods,
    )
    # The good device is already measured: the campaign adopts its
    # signature instead of simulating it a second time.
    dictionary = campaign.run(runner=engine, nominal=good_signature)

    trials = []
    for fault in faults:
        report = _signature_report(dictionary.entry(fault.label), program)
        trials.append(
            FaultTrial(
                fault=fault,
                verdict=report.verdict,
                detected=report.verdict in ("fail", "ambiguous"),
            )
        )
    return CoverageReport(trials=tuple(trials), good_verdict=good_report.verdict)
