"""Go/no-go BIST programs.

A :class:`BISTProgram` runs the analyzer over a set of test frequencies
and compares the *bounded* gain measurements against a
:class:`~repro.bist.limits.SpecMask`.  Because measurements are
intervals, three outcomes exist per point:

* **pass** — the whole interval lies inside the limits;
* **fail** — the whole interval lies outside;
* **ambiguous** — the interval straddles a limit: the test is not
  conclusive at this window size (increase ``M``, exactly the knob the
  paper highlights).

The device verdict is fail if any point fails; ambiguous if no point
fails but some are inconclusive; pass otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.analyzer import NetworkAnalyzer
from ..errors import ConfigError
from .limits import SpecMask


@dataclass(frozen=True)
class PointVerdict:
    """Verdict at one test frequency."""

    frequency: float
    gain_db_lower: float
    gain_db_upper: float
    limit_lo_db: float
    limit_hi_db: float
    verdict: str  # "pass" | "fail" | "ambiguous"


def point_verdict(
    frequency: float, gain_db, lo: float, hi: float
) -> PointVerdict:
    """Tri-state comparison of one bounded gain against its limits.

    ``gain_db`` is a :class:`~repro.intervals.BoundedValue`; the verdict
    is conclusive only when the *whole* interval clears (or violates)
    the limits.
    """
    if gain_db.lower >= lo and gain_db.upper <= hi:
        verdict = "pass"
    elif gain_db.upper < lo or gain_db.lower > hi:
        verdict = "fail"
    else:
        verdict = "ambiguous"
    return PointVerdict(
        frequency=frequency,
        gain_db_lower=gain_db.lower,
        gain_db_upper=gain_db.upper,
        limit_lo_db=lo,
        limit_hi_db=hi,
        verdict=verdict,
    )


@dataclass(frozen=True)
class BISTReport:
    """Outcome of one full BIST program execution."""

    points: tuple[PointVerdict, ...]

    @property
    def verdict(self) -> str:
        if any(p.verdict == "fail" for p in self.points):
            return "fail"
        if any(p.verdict == "ambiguous" for p in self.points):
            return "ambiguous"
        return "pass"

    @property
    def failed_points(self) -> tuple[PointVerdict, ...]:
        return tuple(p for p in self.points if p.verdict == "fail")


class BISTProgram:
    """A production-style go/no-go test program.

    Parameters
    ----------
    mask:
        Specification limits.
    frequencies:
        Test frequencies (each must be covered by the mask).
    m_periods:
        Evaluation window per point (smaller = faster test, wider
        intervals, more ambiguous outcomes — the test-time/accuracy
        trade-off of the paper's Section IV.B).
    """

    def __init__(self, mask: SpecMask, frequencies, m_periods: int = 50) -> None:
        self.mask = mask
        self.frequencies = [float(f) for f in frequencies]
        if not self.frequencies:
            raise ConfigError("need at least one test frequency")
        for f in self.frequencies:
            if mask.limits_at(f) is None:
                raise ConfigError(
                    f"test frequency {f:g} Hz is not covered by the mask"
                )
        if m_periods < 2:
            raise ConfigError(f"m_periods must be >= 2, got {m_periods}")
        self.m_periods = m_periods

    def run(self, analyzer: NetworkAnalyzer) -> BISTReport:
        """Execute the program on an analyzer (calibrating if needed)."""
        if analyzer.calibration is None:
            analyzer.calibrate(self.frequencies[0], m_periods=self.m_periods)
        points = []
        for f in self.frequencies:
            measurement = analyzer.measure_gain_phase(f, m_periods=self.m_periods)
            lo, hi = self.mask.limits_at(f)
            points.append(point_verdict(f, measurement.gain_db, lo, hi))
        return BISTReport(points=tuple(points))
