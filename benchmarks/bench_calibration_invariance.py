"""Experiment CAL — "this calibration only needs to be performed once".

Section III.C: because the whole analyzer scales with the master clock,
the stimulus amplitude and phase measured on the bypass are the *same
numbers* at every sweep frequency.  The bench measures the bypass at
frequencies spanning the full band and reports the spread; it then
cross-checks that a Bode sweep using a calibration taken at 150 Hz
matches one using a calibration taken at 20 kHz.
"""

import numpy as np

from repro.core.analyzer import NetworkAnalyzer
from repro.core.config import AnalyzerConfig
from repro.dut.active_rc import ActiveRCLowpass
from repro.dut.base import PassthroughDUT
from repro.reporting.series import format_series

FREQS = (100.0, 316.0, 1000.0, 3160.0, 10_000.0, 20_000.0)


def run_calibration_invariance(m_periods: int = 100):
    an = NetworkAnalyzer(
        PassthroughDUT(), AnalyzerConfig.ideal(m_periods=m_periods)
    )
    amplitudes = []
    phases = []
    for f in FREQS:
        m = an.measure_stimulus(f, through_dut=False)
        amplitudes.append(m.amplitude.value)
        phases.append(np.degrees(m.phase.value))
    text = (
        "Calibration invariance: bypass stimulus readings across the band\n\n"
        + format_series(
            {
                "fwave (Hz)": FREQS,
                "amplitude (V)": amplitudes,
                "phase (deg)": phases,
            },
            digits=9,
        )
    )

    # Cross-check with the DUT: two calibrations, same Bode.
    dut = ActiveRCLowpass.from_specs(cutoff=1000.0)
    analyzer = NetworkAnalyzer(
        dut, AnalyzerConfig.ideal(m_periods=min(m_periods, 40))
    )
    cal_low = analyzer.calibrate(150.0)
    gains_low = [
        analyzer.measure_gain_phase(f, calibration=cal_low).gain_db.value
        for f in (500.0, 2000.0)
    ]
    cal_high = analyzer.calibrate(20_000.0)
    gains_high = [
        analyzer.measure_gain_phase(f, calibration=cal_high).gain_db.value
        for f in (500.0, 2000.0)
    ]
    return text, amplitudes, phases, gains_low, gains_high


def test_calibration_invariance(benchmark, record_result, smoke):
    if smoke:
        text, amplitudes, phases, gains_low, gains_high = (
            run_calibration_invariance(m_periods=20)
        )
    else:
        text, amplitudes, phases, gains_low, gains_high = benchmark.pedantic(
            run_calibration_invariance, rounds=1, iterations=1
        )
    record_result("calibration_invariance", text)
    # Exactness claims hold at any window size — asserted in smoke too.

    # The paper's claim, numerically exact for the ideal analyzer.
    assert np.ptp(amplitudes) < 1e-12
    assert np.ptp(phases) < 1e-10
    assert np.allclose(gains_low, gains_high, atol=1e-9)
