"""Experiment OBS — tracing overhead on the engine's throughput workload.

Not a paper figure: this bench holds the observability layer (PR
"observability": :mod:`repro.obs`) to its cost contract on the same
fault-campaign population as ``bench_engine_throughput``:

* **NullRecorder within noise** — the default ``obs=`` seam may not
  slow an untraced run.  The instrumented hot paths guard per-job work
  behind ``obs.enabled`` and pay one no-op context manager per batch,
  so the null-recorder run must stay within measurement noise of the
  plain PR 6 figures (asserted at <= 10 % to keep the bench stable on
  loaded CI hosts — the real margin is far smaller).
* **Active recorder under 5 %** — a full :class:`~repro.obs.TraceRecorder`
  capturing every span (batches, calibrations, per-device job spans)
  must cost less than 5 % of the vectorized population workload.
* **Tracing changes no numbers** — the traced run's signatures must be
  bit-identical to the untraced run's.

Both comparisons run serially on one core with pre-warmed calibration
caches, so the ratios are pure recorder cost.
"""

import time

from repro.core.config import AnalyzerConfig
from repro.dut.active_rc import ActiveRCLowpass
from repro.dut.faults import fault_catalog
from repro.engine import BatchRunner
from repro.obs import NullRecorder, TraceRecorder

POPULATION_DEVIATIONS = (-0.5, -0.4, -0.3, -0.2, -0.1, 0.1, 0.2, 0.3, 0.4, 0.5)
POPULATION_FREQS = (300.0, 1000.0, 2000.0)
POPULATION_M = 40
NULL_OVERHEAD_LIMIT = 0.10   # noise band for the zero-cost contract
ACTIVE_OVERHEAD_LIMIT = 0.05  # the ISSUE's hard ceiling
REPEATS = 5


def _time(fn, repeats=REPEATS):
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _signatures(trials):
    return [
        m.output.signature for measurements in trials for m in measurements
    ]


def run_obs_overhead(
    m_periods: int = POPULATION_M,
    deviations=POPULATION_DEVIATIONS,
    repeats: int = REPEATS,
) -> tuple[str, dict]:
    golden = ActiveRCLowpass.from_specs(cutoff=1000.0)
    duts = [golden] + [f.apply(golden) for f in fault_catalog(deviations)]
    config = AnalyzerConfig.ideal(m_periods=m_periods)

    def campaign(runner):
        return runner.run_fault_trials(
            duts, config, POPULATION_FREQS, m_periods=m_periods
        )

    def timed_runner(obs):
        runner = BatchRunner(n_workers=1, backend="vectorized", obs=obs)
        runner.calibration_for(config, POPULATION_FREQS[0], m_periods)
        return _time(lambda: campaign(runner), repeats=repeats)

    t_plain, trials_plain = timed_runner(None)
    t_null, trials_null = timed_runner(NullRecorder())
    recorder = TraceRecorder()
    t_active, trials_active = timed_runner(recorder)

    trace = recorder.trace()
    null_overhead = t_null / t_plain - 1.0
    active_overhead = t_active / t_plain - 1.0
    figures = {
        "population_devices": len(duts),
        # Side-by-side hook for EXPERIMENTS.md: the same population as
        # bench_engine_throughput's backend comparison, in devices/s.
        "vectorized_devices_per_s": len(duts) / t_plain,
        "plain_s": t_plain,
        "null_s": t_null,
        "active_s": t_active,
        "null_overhead": null_overhead,
        "active_overhead": active_overhead,
        "spans_recorded": len(trace),
        "signatures_identical": (
            _signatures(trials_plain)
            == _signatures(trials_null)
            == _signatures(trials_active)
        ),
    }
    text = (
        f"OBS - tracing overhead ({len(duts)} devices x "
        f"{len(POPULATION_FREQS)} tones, M = {m_periods}, vectorized, "
        f"best of {repeats})\n\n"
        f"plain run (no obs= at all)  : {t_plain * 1e3:8.1f} ms\n"
        f"NullRecorder                : {t_null * 1e3:8.1f} ms"
        f"  ({null_overhead:+7.1%})\n"
        f"TraceRecorder (full spans)  : {t_active * 1e3:8.1f} ms"
        f"  ({active_overhead:+7.1%}, {len(trace)} spans)\n"
        f"signatures identical        : {figures['signatures_identical']}\n"
    )
    return text, figures


def test_obs_overhead(benchmark, record_result, smoke):
    if smoke:
        text, figures = run_obs_overhead(
            m_periods=20, deviations=(-0.5, 0.5), repeats=2
        )
        record_result("obs_overhead", text)
        # Correctness invariants hold at any size; timing margins do not.
        assert figures["signatures_identical"]
        assert figures["spans_recorded"] > 0
        return
    text, figures = benchmark.pedantic(run_obs_overhead, rounds=1, iterations=1)
    record_result("obs_overhead", text)

    # Tracing must never change a number.
    assert figures["signatures_identical"]
    # The trace must actually capture the campaign (batch + calibration
    # + one synthetic job span per device per repeat).
    assert figures["spans_recorded"] >= figures["population_devices"]
    # The zero-cost contract: obs=NullRecorder within noise of no obs.
    assert figures["null_overhead"] <= NULL_OVERHEAD_LIMIT, (
        f"NullRecorder overhead {figures['null_overhead']:.1%} exceeds "
        f"the {NULL_OVERHEAD_LIMIT:.0%} noise band"
    )
    # The active-recorder ceiling from the PR's acceptance criteria.
    assert figures["active_overhead"] <= ACTIVE_OVERHEAD_LIMIT, (
        f"TraceRecorder overhead {figures['active_overhead']:.1%} exceeds "
        f"the {ACTIVE_OVERHEAD_LIMIT:.0%} ceiling"
    )
