"""Experiment SVC — analyzer-as-a-service throughput under client load.

Eight concurrent clients each submit a Monte-Carlo yield lot over the
service's TCP socket; together the lots cover a 50 000-device batch.
The bench records aggregate **jobs/s** and **devices/s** (the production
figure of merit: how fast the service screens a lot), plus the wall
time and the scheduler's terminal queue depths.  One client's streamed
result is additionally compared byte-for-byte against a synchronous
:meth:`~repro.api.session.Session.run_scenario` of the same spec — load
must never cost determinism.

Smoke mode shrinks the lot (8 clients x 40 devices) but exercises the
full path: TCP framing, scheduling, streaming, reassembly.
"""

import asyncio
import threading
import time

from repro.api import ExecutionPolicy, Session
from repro.reporting.export import baseline_to_json
from repro.scenarios import AnalyzerSettings, ScenarioSpec, YieldStep
from repro.service import AnalyzerServer, AnalyzerService, ServiceClient

N_CLIENTS = 8
MAX_RUNNING = 4
M_PERIODS = 20
FULL_LOT = 50_000
SMOKE_LOT = 320


def lot_spec(index: int, n_devices: int) -> ScenarioSpec:
    """Client ``index``'s slice of the batch — distinct seed, no dedupe."""
    return ScenarioSpec(
        name=f"svc_lot_{index}",
        analyzer=AnalyzerSettings(m_periods=M_PERIODS),
        seed=index,
        steps=(YieldStep(name="lot", n_devices=n_devices),),
    )


def run_service_throughput_bench(n_devices_total: int = FULL_LOT):
    policy = ExecutionPolicy(backend="vectorized")
    devices_each = n_devices_total // N_CLIENTS
    specs = [lot_spec(i, devices_each) for i in range(N_CLIENTS)]
    streamed: dict[int, object] = {}
    failures: list[str] = []

    def client(index: int, port: int) -> None:
        try:
            streamed[index] = ServiceClient(
                port=port, timeout=600.0
            ).run_scenario(specs[index], policy)
        except Exception as exc:  # noqa: BLE001 — recorded, not swallowed
            failures.append(f"client {index}: {exc}")

    async def main():
        service = AnalyzerService(max_running=MAX_RUNNING)
        async with AnalyzerServer(service) as server:
            threads = [
                threading.Thread(target=client, args=(i, server.port))
                for i in range(N_CLIENTS)
            ]
            t0 = time.perf_counter()
            for thread in threads:
                thread.start()
            while any(thread.is_alive() for thread in threads):
                await asyncio.sleep(0.02)
            elapsed = time.perf_counter() - t0
            return elapsed, service.status()

    elapsed, status = asyncio.run(main())
    assert not failures, failures
    assert len(streamed) == N_CLIENTS

    # Load never costs determinism: client 0's streamed result is
    # byte-identical to a synchronous run of the same spec.
    with Session(policy=policy) as session:
        sync = session.run_scenario(specs[0]).raw
    deterministic = (
        baseline_to_json(specs[0], streamed[0])
        == baseline_to_json(specs[0], sync)
    )

    n_devices = devices_each * N_CLIENTS
    figures = {
        "n_clients": N_CLIENTS,
        "max_running": MAX_RUNNING,
        "n_devices": n_devices,
        "wall_s": elapsed,
        "jobs_per_s": N_CLIENTS / elapsed,
        "devices_per_s": n_devices / elapsed,
        "deterministic_under_load": deterministic,
        "jobs_done": status["jobs"]["done"],
    }
    text = (
        f"Service throughput ({N_CLIENTS} concurrent clients, "
        f"{n_devices} devices total, max_running={MAX_RUNNING}, "
        f"M = {M_PERIODS})\n\n"
        f"wall time                   : {elapsed:8.2f} s\n"
        f"jobs/s                      : {N_CLIENTS / elapsed:8.3f}\n"
        f"devices/s                   : {n_devices / elapsed:8.1f}\n"
        f"jobs finished 'done'        : {status['jobs']['done']}\n"
        f"streamed == synchronous     : {deterministic}\n"
    )
    return text, figures


def test_service_throughput(benchmark, record_result, smoke):
    if smoke:
        text, figures = run_service_throughput_bench(SMOKE_LOT)
        record_result("service_throughput", text, figures)
        assert figures["deterministic_under_load"]
        assert figures["jobs_done"] == N_CLIENTS
        return
    text, figures = benchmark.pedantic(
        run_service_throughput_bench, rounds=1, iterations=1
    )
    record_result("service_throughput", text, figures)
    assert figures["deterministic_under_load"]
    assert figures["jobs_done"] == N_CLIENTS
