"""Experiment FLT — fault campaign throughput and diagnosis accuracy.

Not a paper figure: this bench records the production figures of the
fault-dictionary subsystem (PR "Fault-dictionary & diagnosis subsystem")
on the demonstrator DUT:

* **campaign throughput** — faulty devices measured per second when the
  catalog runs as engine jobs, serial vs parallel, with the
  bit-identity guarantee checked on the side and the calibration paid
  exactly once for the whole catalog;
* **coverage** — fraction of the catalog a +/-2 dB go/no-go mask fails
  outright (the `bist.coverage` wrapper over the same campaign);
* **diagnosis accuracy** — fraction of catalog entries whose measured
  signature diagnoses back to the injected fault (best candidate or
  ambiguity group), after compacting the dictionary to 3 greedy-selected
  probe frequencies;
* **dictionary compaction** — candidate plan size vs selected probes,
  and the ambiguity-group structure of the compacted dictionary.

Parallel speedup is hardware-dependent; the bench records the measured
figure without asserting it (see bench_engine_throughput for the
scaling assertion policy).
"""

import os
import time

from repro.api import ExecutionPolicy, Session
from repro.bist.limits import SpecMask
from repro.bist.program import BISTProgram
from repro.core.sweep import FrequencySweepPlan
from repro.dut.active_rc import ActiveRCLowpass
from repro.faults import (
    FaultCampaign,
    diagnose,
    measure_signature,
    select_probe_frequencies,
)
from repro.dut.faults import full_catalog

M_PERIODS = 40
N_CANDIDATE_POINTS = 10
N_PROBES = 3
N_WORKERS = 4


def _flatten(dictionary):
    # All six interval fields: ambiguity groups hang off the bounds, so
    # bit-identity must cover them, not just the point estimates.
    return [
        (p.gain_db.value, p.gain_db.lower, p.gain_db.upper,
         p.phase_deg.value, p.phase_deg.lower, p.phase_deg.upper)
        for sig in (dictionary.nominal, *dictionary.entries)
        for p in sig.points
    ]


def run_fault_campaign(
    m_periods: int = M_PERIODS,
    n_candidate_points: int = N_CANDIDATE_POINTS,
    n_probes: int = N_PROBES,
) -> tuple[str, dict]:
    dut = ActiveRCLowpass.from_specs(cutoff=1000.0)
    catalog = full_catalog((-0.5, -0.2, 0.2, 0.5))
    plan = FrequencySweepPlan.around(
        1000.0, decades=1.5, n_points=n_candidate_points
    )
    campaign = FaultCampaign(dut, catalog, plan, m_periods=m_periods)

    # --- campaign throughput: serial vs parallel ----------------------
    serial_session = Session(dut, policy=ExecutionPolicy())
    t0 = time.perf_counter()
    dictionary = campaign.run(session=serial_session)
    t_serial = time.perf_counter() - t0
    with Session(dut, policy=ExecutionPolicy(n_workers=N_WORKERS)) as parallel_session:
        t0 = time.perf_counter()
        parallel_dictionary = campaign.run(session=parallel_session)
        t_parallel = time.perf_counter() - t0
    bit_identical = _flatten(dictionary) == _flatten(parallel_dictionary)
    n_devices = len(catalog) + 1  # catalog + nominal
    calibration_misses = serial_session.cache.misses

    # --- coverage through the session surface -------------------------
    test_freqs = [300.0, 1000.0, 2000.0]
    mask = SpecMask.from_golden(dut, test_freqs, tolerance_db=2.0)
    program = BISTProgram(mask, test_freqs, m_periods=m_periods)
    coverage = serial_session.fault_coverage(catalog, program).raw

    # --- dictionary compaction + diagnosis accuracy -------------------
    probes = select_probe_frequencies(dictionary, n_probes)
    production = dictionary.restrict(probes)
    groups = production.ambiguity_groups()
    correct = 0
    conclusive = 0
    t0 = time.perf_counter()
    for fault in catalog:
        signature = measure_signature(
            fault.apply(dut),
            probes,
            m_periods=m_periods,
            label=fault.label,
            session=serial_session,
        )
        result = diagnose(signature, production)
        correct += bool(result.names(fault.label))
        conclusive += result.conclusive
    t_diagnose = time.perf_counter() - t0

    figures = {
        "n_faults": len(catalog),
        "serial_s": t_serial,
        "parallel_s": t_parallel,
        "devices_per_s": n_devices / t_serial,
        "parallel_speedup": t_serial / t_parallel,
        "bit_identical": bit_identical,
        "calibration_misses": calibration_misses,
        "coverage": coverage.coverage,
        "flagged": coverage.flagged,
        "accuracy": correct / len(catalog),
        "conclusive_fraction": conclusive / len(catalog),
        "diagnose_ms": 1e3 * t_diagnose / len(catalog),
        "n_groups": len(groups),
        "n_singletons": sum(1 for g in groups if len(g) == 1),
        "largest_group": max(len(g) for g in groups),
        "cpus": os.cpu_count() or 1,
    }
    text = (
        f"FLT - fault campaign ({len(catalog)} faults, "
        f"{n_candidate_points}-point candidate plan, M = {m_periods})\n\n"
        f"campaign, serial            : {t_serial * 1e3:8.1f} ms"
        f"  ({figures['devices_per_s']:.1f} devices/s)\n"
        f"campaign, {N_WORKERS} workers         : {t_parallel * 1e3:8.1f} ms"
        f"  ({figures['parallel_speedup']:.2f} x, {figures['cpus']} CPU(s))\n"
        f"parallel == serial          : {bit_identical}\n"
        f"calibration acquisitions    : {calibration_misses:8d}"
        f"  (for {n_devices} devices x {n_candidate_points} points)\n"
        f"coverage (fail verdicts)    : {coverage.coverage:8.3f}\n"
        f"flagged (fail + ambiguous)  : {coverage.flagged:8.3f}\n"
        f"probe frequencies           :     {', '.join(f'{f:.0f} Hz' for f in probes)}\n"
        f"diagnosis accuracy          : {figures['accuracy']:8.3f}"
        f"  ({figures['diagnose_ms']:.1f} ms/diagnosis)\n"
        f"conclusive diagnoses        : {figures['conclusive_fraction']:8.3f}\n"
        f"ambiguity groups            : {figures['n_groups']:8d}"
        f"  ({figures['n_singletons']} singletons, "
        f"largest {figures['largest_group']})\n"
    )
    return text, figures


def test_fault_campaign(benchmark, record_result, smoke):
    if smoke:
        text, figures = run_fault_campaign(
            m_periods=10, n_candidate_points=4, n_probes=2
        )
    else:
        text, figures = benchmark.pedantic(
            run_fault_campaign, rounds=1, iterations=1
        )
    record_result("fault_campaign", text)

    # Parallelism must never change the dictionary.
    assert figures["bit_identical"]
    # The whole campaign pays for exactly one calibration.
    assert figures["calibration_misses"] == 1
    if smoke:
        return
    # Most of the catalog is at least flagged (the +/-20 % deviations on
    # low-sensitivity components legitimately escape a +/-2 dB mask —
    # coverage is a function of fault size, which diagnosis sidesteps by
    # matching signatures instead of thresholding them).
    assert figures["flagged"] >= 0.85
    assert figures["coverage"] >= 0.55
    # Diagnosis names the injected fault (or its ambiguity group) for
    # the entire catalog — the PR's acceptance criterion, measured.
    assert figures["accuracy"] == 1.0
    # Compaction keeps most faults uniquely diagnosable.
    assert figures["n_singletons"] >= figures["n_faults"] // 2
