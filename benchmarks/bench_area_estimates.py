"""Experiment AREA — silicon area figures (Section IV / III.B).

Paper: "The sinewave generator occupies an area of 0.15mm2 while the
sinewave evaluator occupies only 0.065mm2"; the 16-bit digital evaluator
logic synthesizes to "300um x 300um approximately".

The analytical area model reproduces these from the block inventory
(capacitor units, amplifiers, comparators, std-cell gates) with typical
0.35 um constants — documenting *why* the evaluator is so small.
"""

from repro.area.estimate import (
    AreaModel,
    PAPER_DIGITAL_DSP_UM2,
    PAPER_EVALUATOR_MM2,
    PAPER_GENERATOR_MM2,
)
from repro.reporting.tables import ascii_table


def run_area():
    model = AreaModel()
    generator = model.generator_area()
    evaluator = model.evaluator_area()
    digital = model.digital_dsp_area(16)
    rows = [
        [
            "sinewave generator",
            generator.total_mm2,
            PAPER_GENERATOR_MM2,
            generator.capacitors_um2 / generator.total_um2,
        ],
        [
            "sinewave evaluator (analog)",
            evaluator.total_mm2,
            PAPER_EVALUATOR_MM2,
            evaluator.capacitors_um2 / evaluator.total_um2,
        ],
        [
            "digital DSP (16-bit est.)",
            digital / 1e6,
            PAPER_DIGITAL_DSP_UM2 / 1e6,
            0.0,
        ],
    ]
    text = ascii_table(
        ["block", "model (mm^2)", "paper (mm^2)", "capacitor fraction"],
        rows,
        title="Silicon area (0.35 um CMOS): analytical model vs paper",
    )
    return text, generator, evaluator, digital


def test_area_estimates(benchmark, record_result):
    text, generator, evaluator, digital = benchmark.pedantic(
        run_area, rounds=1, iterations=1
    )
    record_result("area_estimates", text)

    assert generator.total_mm2 == __import__("pytest").approx(
        PAPER_GENERATOR_MM2, rel=0.15
    )
    assert evaluator.total_mm2 == __import__("pytest").approx(
        PAPER_EVALUATOR_MM2, rel=0.15
    )
    assert digital == __import__("pytest").approx(PAPER_DIGITAL_DSP_UM2, rel=0.15)
    # The architectural point: evaluator << generator.
    assert evaluator.total_mm2 < generator.total_mm2 / 2
