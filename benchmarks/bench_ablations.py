"""Experiment ABL — ablations of the design choices DESIGN.md calls out.

Four studies, each isolating one architectural decision of the paper:

1. **Chopped offset cancellation** (the reconstructed "MT/2" scheme):
   with a 5 mV modulator offset, chopped counting measures the DC level
   exactly; plain counting reads the offset as signal.
2. **Synchronous evaluation** (N fixed by construction): an asynchronous
   evaluator whose square wave is mis-locked by 1 % measures a badly
   biased amplitude.
3. **Exact sampled-correlator constants vs the paper's pi/2**: the
   continuous-time constants leave a small systematic amplitude error
   that grows with k.
4. **1st- vs 2nd-order sigma-delta**: 2nd order has better noise shaping
   but the counted signature loses its small deterministic error bound —
   why the paper's architecture uses 1st order.
"""

import numpy as np

from repro.clocking.sequencer import ModulationSequence
from repro.evaluator.dsp import SignatureDSP
from repro.evaluator.evaluator import SinewaveEvaluator
from repro.evaluator.sigma_delta import FirstOrderSigmaDelta, SecondOrderSigmaDelta
from repro.reporting.tables import ascii_table
from repro.sc.opamp import OpAmpModel

N = 96


def tone(k, amplitude, phase, m, offset=0.0):
    t = np.arange(m * N)
    return offset + amplitude * np.sin(2 * np.pi * k * t / N + phase)


def ablation_chopping(m: int = 100):
    amp = OpAmpModel(offset=5e-3)
    dsp = SignatureDSP()
    x = tone(1, 0.2, 0.0, m, offset=0.1)
    chopped = SinewaveEvaluator(opamp1=amp, opamp2=amp, chopped=True)
    plain = SinewaveEvaluator(opamp1=amp, opamp2=amp, chopped=False)
    b_chop = dsp.dc_level(chopped.measure_dc(x, m_periods=m)).value
    b_plain = dsp.dc_level(plain.measure_dc(x, m_periods=m)).value
    return abs(b_chop - 0.1), abs(b_plain - 0.1)


def ablation_synchronization(m: int = 100):
    dsp = SignatureDSP()
    ev = SinewaveEvaluator()
    x_locked = tone(1, 0.3, 0.0, m)
    locked = dsp.amplitude(ev.measure(x_locked, harmonic=1, m_periods=m)).value
    # 1 % clock mismatch: the tone no longer sits on the grid.
    t = np.arange(m * N)
    x_unlocked = 0.3 * np.sin(2 * np.pi * 1.01 * t / N)
    unlocked = dsp.amplitude(ev.measure(x_unlocked, harmonic=1, m_periods=m)).value
    return abs(locked - 0.3), abs(unlocked - 0.3)


def ablation_constants(m: int = 200):
    ev = SinewaveEvaluator()
    exact_dsp = SignatureDSP()
    paper_dsp = SignatureDSP(paper_constants=True)
    errors = {}
    for k in (1, 3):
        x = tone(k, 0.3, 0.4, m)
        sig = ev.measure(x, harmonic=k, m_periods=m)
        errors[k] = (
            abs(exact_dsp.amplitude(sig).value - 0.3),
            abs(paper_dsp.amplitude(sig).value - 0.3),
        )
    return errors


def ablation_modulator_order(n_trials: int = 40):
    """Worst-case accumulated signature error across random signals."""
    rng = np.random.default_rng(0)
    seq = ModulationSequence(N, 1)
    worst1 = 0.0
    worst2 = 0.0
    for _ in range(n_trials):
        m = int(rng.integers(5, 60))
        a = rng.uniform(0.05, 0.35)
        ph = rng.uniform(0, 2 * np.pi)
        x = tone(1, a, ph, m, offset=float(rng.uniform(-0.05, 0.05)))
        q1, _ = seq.pair(m * N)
        ideal = np.sum(q1 * x) / 0.5
        r1 = FirstOrderSigmaDelta().modulate(x, q1.astype(float))
        r2 = SecondOrderSigmaDelta().modulate(x, q1.astype(float))
        worst1 = max(worst1, abs(float(np.sum(r1.bits, dtype=np.int64)) - ideal))
        worst2 = max(worst2, abs(float(np.sum(r2.bits, dtype=np.int64)) - ideal))
    return worst1, worst2


def ablation_step_count():
    """Staircase resolution: first-image level for P = 8/16/32."""
    from repro.generator import multistep

    return {
        row["steps"]: row["first_image_dbc"]
        for row in multistep.purity_comparison((8, 16, 32))
    }


def run_ablations(m: int = 100, n_trials: int = 40):
    chop_err, plain_err = ablation_chopping(m)
    locked_err, unlocked_err = ablation_synchronization(m)
    const_errors = ablation_constants(2 * m)
    eps1, eps2 = ablation_modulator_order(n_trials)
    step_images = ablation_step_count()
    rows = [
        ["DC error, chopped counting (V)", chop_err],
        ["DC error, plain counting (V)", plain_err],
        ["amplitude error, clock-locked (V)", locked_err],
        ["amplitude error, 1% clock mismatch (V)", unlocked_err],
        ["A error k=1, exact constants (V)", const_errors[1][0]],
        ["A error k=1, paper pi/2 (V)", const_errors[1][1]],
        ["A error k=3, exact constants (V)", const_errors[3][0]],
        ["A error k=3, paper pi/2 (V)", const_errors[3][1]],
        ["worst |signature error|, 1st-order SD (counts)", eps1],
        ["worst |signature error|, 2nd-order SD (counts)", eps2],
        ["first image, 8-step synthesis (dBc)", step_images[8]],
        ["first image, 16-step synthesis (dBc, paper)", step_images[16]],
        ["first image, 32-step synthesis (dBc)", step_images[32]],
    ]
    text = ascii_table(
        ["ablation", "value"],
        rows,
        title="Design-choice ablations",
    )
    return text, (
        chop_err,
        plain_err,
        locked_err,
        unlocked_err,
        const_errors,
        eps1,
        eps2,
        step_images,
    )


def test_ablations(benchmark, record_result, smoke):
    if smoke:
        text, results = run_ablations(m=20, n_trials=5)
        record_result("ablations", text)
        # The deterministic 1st-order bound holds at any size.
        eps1 = results[5]
        assert eps1 <= 4.0 + 1e-9
        return
    text, results = benchmark.pedantic(run_ablations, rounds=1, iterations=1)
    record_result("ablations", text)
    (
        chop_err,
        plain_err,
        locked_err,
        unlocked_err,
        const_errors,
        eps1,
        eps2,
        step_images,
    ) = results

    # 1. Chopping beats plain counting by the full offset magnitude.
    assert chop_err < 1e-3
    assert plain_err > 4e-3
    # 2. Synchronization matters: a 1 % clock slip wrecks the reading.
    assert locked_err < 1e-3
    assert unlocked_err > 10 * locked_err
    # 3. Exact constants beat pi/2, most visibly at higher k.
    assert const_errors[3][0] < const_errors[3][1]
    # 4. 1st order keeps the deterministic bound; 2nd order does not.
    assert eps1 <= 4.0 + 1e-9
    assert eps2 > eps1
    # 5. Step count buys image suppression (~6 dB per octave).
    assert step_images[8] > step_images[16] > step_images[32]
    assert step_images[16] - step_images[32] == __import__("pytest").approx(
        6.3, abs=0.5
    )
