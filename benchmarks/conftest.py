"""Shared infrastructure for the benchmark harness.

Every bench regenerates one of the paper's tables or figures.  The
regenerated rows/series are written to ``benchmarks/results/<name>.txt``
(and printed, visible with ``pytest -s``) so they can be compared against
the paper — EXPERIMENTS.md records that comparison.  The pytest-benchmark
timing table additionally documents the simulation cost of each
experiment.

Smoke mode
----------
``pytest benchmarks --smoke`` runs every bench end to end at tiny N:
the CI smoke job uses it to catch silent benchmark rot (import errors,
API drift, broken experiment plumbing) without paying full experiment
cost.  In smoke mode the quantitative assertions tied to full-size runs
are skipped — tiny windows cannot reproduce the paper's figures — and
the recorded full-size results under ``benchmarks/results/`` are left
untouched.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def pytest_addoption(parser):
    parser.addoption(
        "--smoke",
        action="store_true",
        default=False,
        help="tiny-N smoke run: exercise every bench without asserting "
        "full-size measured figures (recorded results are not rewritten)",
    )
    parser.addoption(
        "--obs-trace",
        action="store_true",
        default=False,
        help="record a repro.obs trace of every bench (via the "
        "process-wide default-recorder seam) and write it next to its "
        "results as <bench>.trace.jsonl (--trace itself is pytest's "
        "debugger flag)",
    )


@pytest.fixture(scope="session")
def smoke(request) -> bool:
    """True when the run is a tiny-N smoke pass."""
    return bool(request.config.getoption("--smoke"))


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(autouse=True)
def bench_trace(request):
    """Opt-in tracing (``--obs-trace``): every bench drops a trace artifact.

    Sessions and runners built inside the bench pick the recorder up
    through :func:`repro.obs.use_recorder` — the default-recorder seam —
    so benches need no ``obs=`` plumbing of their own.  The artifact
    lands next to the bench's results (``benchmarks/results/`` is
    gitignored); timings in a traced run are perturbed by the recorder
    itself, so recorded result tables should come from untraced runs.
    """
    if not request.config.getoption("--obs-trace"):
        yield
        return

    from repro.obs import TraceRecorder, use_recorder
    from repro.reporting.export import trace_to_jsonl

    recorder = TraceRecorder()
    with use_recorder(recorder):
        yield
    results_dir = request.getfixturevalue("results_dir")
    safe = "".join(
        c if c.isalnum() or c in "-_" else "_" for c in request.node.name
    )
    (results_dir / f"{safe}.trace.jsonl").write_text(
        trace_to_jsonl(recorder.trace())
    )


def _plain(value):
    """Coerce a figures payload to canonical-JSON-compatible types.

    Benches hand over whatever their measurement produced — numpy
    scalars included — and the machine-readable artifact must still be
    canonical (finite floats, plain containers).
    """
    if isinstance(value, dict):
        return {str(k): _plain(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_plain(v) for v in value]
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    if hasattr(value, "item"):  # numpy scalar
        return _plain(value.item())
    return str(value)


@pytest.fixture
def record_result(results_dir, smoke):
    """Write a bench's regenerated table to disk and echo it.

    Smoke runs only echo the table: the committed results record
    full-size experiments and must not be clobbered by tiny-N output.

    Every run — smoke included — additionally writes a machine-readable
    ``BENCH_<name>.json`` artifact (canonical JSON, byte-stable for the
    same figures) carrying the measured figures the bench passed in, so
    downstream tooling never has to parse the human-readable table.
    The payload marks smoke runs as such.
    """
    from repro.reporting.export import canonical_json, write_json

    def _write(name: str, text: str, figures: dict | None = None) -> None:
        payload = {
            "bench": name,
            "smoke": smoke,
            "figures": _plain(figures or {}),
            "table": text,
        }
        write_json(results_dir / f"BENCH_{name}.json", canonical_json(payload))
        if not smoke:
            path = results_dir / f"{name}.txt"
            path.write_text(text + "\n")
        print(f"\n==== {name} ====\n{text}\n")

    return _write
