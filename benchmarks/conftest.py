"""Shared infrastructure for the benchmark harness.

Every bench regenerates one of the paper's tables or figures.  The
regenerated rows/series are written to ``benchmarks/results/<name>.txt``
(and printed, visible with ``pytest -s``) so they can be compared against
the paper — EXPERIMENTS.md records that comparison.  The pytest-benchmark
timing table additionally documents the simulation cost of each
experiment.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def record_result(results_dir):
    """Write a bench's regenerated table to disk and echo it."""

    def _write(name: str, text: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n==== {name} ====\n{text}\n")

    return _write
