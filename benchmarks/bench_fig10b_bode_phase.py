"""Experiment F10b — Fig. 10b: Bode phase of the demonstrator DUT.

Same acquisition as Fig. 10a; the phase runs from ~0 degrees at low
frequency through -90 degrees at the cutoff toward -180 degrees, with
error bands growing in the stopband.
"""

import numpy as np
import pytest

from repro.core.analyzer import NetworkAnalyzer
from repro.core.bode import BodeResult
from repro.core.config import AnalyzerConfig
from repro.core.sweep import FrequencySweepPlan
from repro.dut.active_rc import ActiveRCLowpass
from repro.reporting.series import format_series

M_PERIODS = 200
N_POINTS = 21


def run_fig10b(
    m_periods: int = M_PERIODS, n_points: int = N_POINTS
) -> tuple[str, BodeResult, ActiveRCLowpass]:
    dut = ActiveRCLowpass.from_specs(cutoff=1000.0)
    analyzer = NetworkAnalyzer(dut, AnalyzerConfig.ideal(m_periods=m_periods))
    analyzer.calibrate(fwave=1000.0)
    plan = FrequencySweepPlan.paper_fig10(n_points=n_points)
    bode = BodeResult(tuple(analyzer.bode(plan.frequencies())))
    lo, hi = bode.phase_deg_bounds()
    text = (
        f"Fig. 10b - Bode phase of the 1 kHz active-RC LPF (M = {m_periods})\n\n"
        + format_series(
            {
                "f (Hz)": bode.frequencies(),
                "phase (deg)": bode.phase_deg(),
                "band lo": lo,
                "band hi": hi,
                "analytic": bode.truth_phase_deg(dut),
            }
        )
    )
    return text, bode, dut


def test_fig10b_bode_phase(benchmark, record_result, smoke):
    if smoke:
        text, bode, dut = run_fig10b(m_periods=20, n_points=5)
    else:
        text, bode, dut = benchmark.pedantic(run_fig10b, rounds=1, iterations=1)
    record_result("fig10b_bode_phase", text)

    freqs = bode.frequencies()
    phases = bode.phase_deg()
    truth = bode.truth_phase_deg(dut)

    # Every point's band contains the analytic phase — guaranteed at
    # any window size, smoke included.
    lo, hi = bode.phase_deg_bounds()
    assert np.all(truth >= lo - 1e-9) and np.all(truth <= hi + 1e-9)
    if smoke:
        return
    # Shape: 0 at low f, about -90 around the cutoff, heading to -180 —
    # compared against the analytic phase at the actual grid points.
    assert abs(phases[0] - truth[0]) < 0.5
    near_cutoff = np.argmin(np.abs(freqs - 1000.0))
    assert abs(phases[near_cutoff] - truth[near_cutoff]) < 2.0
    assert truth[near_cutoff] == pytest.approx(-90.0, abs=10.0)
    assert phases[-1] < -150.0
    # Monotone phase lag for a low-pass.
    assert np.all(np.diff(phases) < 0)
