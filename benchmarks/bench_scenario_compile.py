"""Experiment SCN — scenario layer overhead: compile + dispatch cost.

Not a paper figure: this bench records the cost the declarative
scenario layer (PR "Declarative scenario subsystem") adds on top of the
engine it lowers onto.  The layer's contract is that a spec is *free*
at measurement time — all the simulation cost stays in the engine jobs
— so three figures are recorded:

* **parse + compile throughput** — scenario specs lowered per second
  (JSON parse -> strict validation -> catalogs/masks/plans built),
  measured on a multi-step spec;
* **compile overhead per step** — microseconds per lowered step;
* **dispatch overhead** — the wall-clock difference between running a
  compiled scenario and issuing the identical engine calls by hand,
  expressed as a fraction of the hand-written run (must stay within a
  few percent; the scenario layer only *routes* work).

The structural invariants (compiled job accounting, result equivalence
with the hand-written engine run) are asserted at any size; the
overhead ceiling only at full size.
"""

import time

from repro.engine import BatchRunner
from repro.scenarios import (
    AnalyzerSettings,
    ScenarioSpec,
    SweepStep,
    YieldStep,
    compile_scenario,
    run_scenario,
)

N_COMPILE_REPEATS = 200
#: The scenario layer may add at most this fraction of dispatch overhead
#: over hand-written engine calls (full-size runs only).
DISPATCH_OVERHEAD_CEILING = 0.15


def _spec(n_points: int, n_devices: int, m_periods: int) -> ScenarioSpec:
    return ScenarioSpec(
        name="bench",
        description="scenario-layer overhead bench",
        seed=11,
        analyzer=AnalyzerSettings(m_periods=m_periods),
        steps=(
            SweepStep(name="bode", f_start=300.0, f_stop=3000.0,
                      n_points=n_points),
            YieldStep(name="lot", n_devices=n_devices, component_sigma=0.03),
        ),
    )


def _hand_written(spec: ScenarioSpec):
    """The same workload issued directly against the engine."""
    from repro.bist.limits import SpecMask
    from repro.bist.montecarlo import YieldReport
    from repro.bist.program import BISTProgram
    from repro.core.sweep import FrequencySweepPlan
    from repro.dut.active_rc import ActiveRCLowpass, design_mfb_lowpass
    from repro.scenarios.compiler import base_config

    config = base_config(spec)
    sweep_step, yield_step = spec.steps
    dut = ActiveRCLowpass.from_specs(cutoff=spec.dut.cutoff, q=spec.dut.q)
    plan = FrequencySweepPlan(
        sweep_step.f_start, sweep_step.f_stop, sweep_step.n_points
    )
    nominal = design_mfb_lowpass(spec.dut.cutoff)
    golden = ActiveRCLowpass(nominal)
    frequencies = [spec.dut.cutoff * r for r in yield_step.frequency_ratios]
    mask = SpecMask.from_golden(
        golden, frequencies, tolerance_db=yield_step.tolerance_db
    )
    program = BISTProgram(mask, frequencies, m_periods=config.m_periods)
    with BatchRunner() as runner:
        measurements = runner.run_sweep(
            dut, config, [float(f) for f in plan.frequencies()],
            m_periods=config.m_periods,
        )
        trials = runner.run_trials(
            nominal, mask, program,
            n_devices=yield_step.n_devices,
            component_sigma=yield_step.component_sigma,
            seed=spec.seed, config=config,
        )
        report = YieldReport(trials=tuple(trials), ambiguous_passes=False)
    return measurements, report


def run_scenario_compile_bench(
    n_points: int = 12, n_devices: int = 24, m_periods: int = 40,
    n_compile_repeats: int = N_COMPILE_REPEATS,
):
    spec = _spec(n_points, n_devices, m_periods)
    text_form = spec.to_json()

    # --- parse + compile throughput -----------------------------------
    start = time.perf_counter()
    for _ in range(n_compile_repeats):
        compiled = compile_scenario(ScenarioSpec.from_json(text_form))
    t_compile = (time.perf_counter() - start) / n_compile_repeats
    per_step_us = t_compile / len(spec.steps) * 1e6

    # --- dispatch overhead vs hand-written engine calls ---------------
    t0 = time.perf_counter()
    measurements, report = _hand_written(spec)
    t_hand = time.perf_counter() - t0
    t0 = time.perf_counter()
    result = run_scenario(spec)
    t_layer = time.perf_counter() - t0
    overhead = (t_layer - t_hand) / t_hand

    # Equivalence: the layer must not change a single number.
    sweep = result.step("bode")
    signatures_equal = sweep.exact["signature_counts"] == [
        [m.output.signature.i1, m.output.signature.i2,
         m.reference.signature.i1, m.reference.signature.i2]
        for m in measurements
    ]
    yields_equal = (
        result.step("lot").floats["test_yield"] == report.test_yield
    )

    figures = {
        "compiles_per_s": 1.0 / t_compile,
        "per_step_us": per_step_us,
        "t_hand_ms": t_hand * 1e3,
        "t_layer_ms": t_layer * 1e3,
        "dispatch_overhead": overhead,
        "n_jobs": compiled.n_jobs,
        "signatures_equal": signatures_equal,
        "yields_equal": yields_equal,
    }
    text = (
        f"SCN - scenario layer overhead ({n_points}-point sweep + "
        f"{n_devices}-device lot, M = {m_periods})\n\n"
        f"parse + compile             : {figures['compiles_per_s']:8.0f} specs/s"
        f"  ({per_step_us:.0f} us/step, {compiled.n_jobs} engine jobs planned)\n"
        f"hand-written engine calls   : {figures['t_hand_ms']:8.1f} ms\n"
        f"compiled scenario run       : {figures['t_layer_ms']:8.1f} ms"
        f"  ({overhead * 100:+.1f} % dispatch overhead)\n"
        f"signatures identical        : {signatures_equal}\n"
        f"yield figures identical     : {yields_equal}\n"
    )
    return text, figures


def test_scenario_compile_overhead(benchmark, record_result, smoke):
    if smoke:
        text, figures = run_scenario_compile_bench(
            n_points=3, n_devices=4, m_periods=20, n_compile_repeats=5
        )
        record_result("scenario_compile", text)
        # Correctness invariants hold at any size; overhead targets need
        # full-size runs (tiny workloads amplify constant costs).
        assert figures["signatures_equal"]
        assert figures["yields_equal"]
        return
    text, figures = benchmark.pedantic(
        run_scenario_compile_bench, rounds=1, iterations=1
    )
    record_result("scenario_compile", text)
    assert figures["signatures_equal"]
    assert figures["yields_equal"]
    # Compilation is the cheap phase: a spec must lower in well under a
    # millisecond per step or the "free at measurement time" contract
    # is broken.
    assert figures["per_step_us"] < 1000.0
    assert figures["dispatch_overhead"] <= DISPATCH_OVERHEAD_CEILING
