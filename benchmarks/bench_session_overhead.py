"""Experiment API — session-layer overhead: Session dispatch vs direct engine calls.

Not a paper figure: this bench records the cost the unified session
layer (PR "Unified repro.api session layer") adds on top of the engine
it routes onto.  The api layer's contract is that it only *decides* —
policy, seeding, calibration reuse — while every simulated second stays
in the engine jobs, so its dispatch overhead must be within noise of
hand-written engine calls.  Figures recorded:

* **sweep dispatch** — N repeated Bode sweeps through
  ``Session.sweep`` vs the identical ``BatchRunner.run_sweep`` calls,
  per-call overhead in microseconds and as a fraction;
* **yield dispatch** — the same comparison for Monte-Carlo lots
  (``Session.yield_lot`` vs ``BatchRunner.run_trials``);
* **equivalence** — the session path must not change a single integer
  signature count relative to the direct path.

The equivalence invariant is asserted at any size; the overhead ceiling
only at full size (tiny workloads amplify constant costs).
"""

import time

from repro.api import ExecutionPolicy, Session
from repro.bist.limits import SpecMask
from repro.bist.montecarlo import YieldReport
from repro.bist.program import BISTProgram
from repro.core.config import AnalyzerConfig
from repro.core.sweep import FrequencySweepPlan
from repro.dut.active_rc import ActiveRCLowpass, design_mfb_lowpass
from repro.engine import BatchRunner

#: The session layer may add at most this fraction of dispatch overhead
#: over hand-written engine calls (full-size runs only); an absolute
#: per-call allowance keeps the check meaningful when the workload
#: itself is only tens of milliseconds.
DISPATCH_OVERHEAD_CEILING = 0.10
PER_CALL_ALLOWANCE_US = 500.0


def _workloads(n_points: int, n_devices: int, m_periods: int):
    config = AnalyzerConfig.ideal(m_periods=m_periods)
    dut = ActiveRCLowpass.from_specs(cutoff=1000.0)
    plan = FrequencySweepPlan(300.0, 3000.0, n_points)
    frequencies = [float(f) for f in plan.frequencies()]
    nominal = design_mfb_lowpass(1000.0)
    golden = ActiveRCLowpass(nominal)
    test_points = [1000.0 * r for r in (0.3, 1.0, 2.0)]
    mask = SpecMask.from_golden(golden, test_points, tolerance_db=2.0)
    program = BISTProgram(mask, test_points, m_periods=m_periods)
    return config, dut, frequencies, nominal, mask, program


def _timed(repeats: int, fn):
    start = time.perf_counter()
    for _ in range(repeats):
        result = fn()
    return (time.perf_counter() - start) / repeats, result


def run_session_overhead_bench(
    n_points: int = 16,
    n_devices: int = 16,
    m_periods: int = 40,
    repeats: int = 8,
):
    config, dut, frequencies, nominal, mask, program = _workloads(
        n_points, n_devices, m_periods
    )

    # --- direct engine calls (the floor) ------------------------------
    with BatchRunner() as runner:
        runner.run_sweep(dut, config, frequencies, m_periods=m_periods)  # warm
        t_sweep_direct, direct_sweep = _timed(
            repeats,
            lambda: runner.run_sweep(dut, config, frequencies, m_periods=m_periods),
        )
        t_yield_direct, direct_trials = _timed(
            repeats,
            lambda: runner.run_trials(
                nominal, mask, program, n_devices=n_devices,
                component_sigma=0.03, seed=0, config=config,
            ),
        )
        direct_yield = YieldReport(
            trials=tuple(direct_trials), ambiguous_passes=False
        )

    # --- the same workloads through the session facade ----------------
    with Session(dut, config, ExecutionPolicy()) as session:
        session.sweep(frequencies, m_periods=m_periods)  # warm
        t_sweep_session, session_sweep = _timed(
            repeats,
            lambda: session.sweep(frequencies, m_periods=m_periods),
        )
        t_yield_session, session_yield = _timed(
            repeats,
            lambda: session.yield_lot(
                nominal, mask, program, n_devices=n_devices,
                component_sigma=0.03, seed=0,
            ),
        )

    from repro.api import sweep_channels, yield_channels

    signatures_equal = (
        session_sweep.exact
        == sweep_channels(frequencies, direct_sweep)[0]
    )
    yields_equal = session_yield.exact == yield_channels(direct_yield)[0]

    def figures_for(t_direct, t_session):
        return {
            "direct_ms": t_direct * 1e3,
            "session_ms": t_session * 1e3,
            "overhead": (t_session - t_direct) / t_direct,
            "overhead_us": (t_session - t_direct) * 1e6,
        }

    sweep_fig = figures_for(t_sweep_direct, t_sweep_session)
    yield_fig = figures_for(t_yield_direct, t_yield_session)
    figures = {
        "sweep": sweep_fig,
        "yield": yield_fig,
        "signatures_equal": signatures_equal,
        "yields_equal": yields_equal,
    }

    def line(label, fig):
        return (
            f"{label:<28}: {fig['direct_ms']:8.1f} ms direct, "
            f"{fig['session_ms']:8.1f} ms session "
            f"({fig['overhead'] * 100:+.2f} %, "
            f"{fig['overhead_us']:+.0f} us/call)\n"
        )

    text = (
        f"API - session dispatch overhead ({n_points}-point sweep, "
        f"{n_devices}-device lot, M = {m_periods}, {repeats} repeats)\n\n"
        + line("sweep dispatch", sweep_fig)
        + line("yield dispatch", yield_fig)
        + f"signatures identical        : {signatures_equal}\n"
        + f"yield channels identical    : {yields_equal}\n"
    )
    return text, figures


def _overhead_within_noise(fig) -> bool:
    return (
        fig["overhead"] <= DISPATCH_OVERHEAD_CEILING
        or fig["overhead_us"] <= PER_CALL_ALLOWANCE_US
    )


def test_session_dispatch_overhead(benchmark, record_result, smoke):
    if smoke:
        text, figures = run_session_overhead_bench(
            n_points=3, n_devices=3, m_periods=20, repeats=2
        )
        record_result("session_overhead", text)
        # Equivalence holds at any size; the overhead ceiling needs
        # full-size runs (tiny workloads amplify constant costs).
        assert figures["signatures_equal"]
        assert figures["yields_equal"]
        return
    text, figures = benchmark.pedantic(
        run_session_overhead_bench, rounds=1, iterations=1
    )
    record_result("session_overhead", text)
    assert figures["signatures_equal"]
    assert figures["yields_equal"]
    assert _overhead_within_noise(figures["sweep"]), figures["sweep"]
    assert _overhead_within_noise(figures["yield"]), figures["yield"]
