"""Experiment PRB — pseudorandom vs swept-sine fault coverage, head to head.

Not a paper figure: the paper's analyzer sweeps deterministic tones,
and this bench measures what a classic digital-BIST stimulus/compaction
scheme (LFSR pattern source + MISR signature register, PR
"repro.prbist") buys on the same analog demonstrator:

* **head-to-head coverage** — ONE declarative scenario
  (``examples/scenarios/prbist_head_to_head.json``) runs both
  campaigns over the same 30-fault catalog: a pseudorandom step (six
  LFSR-placed tones, 16-bit MISR signature compared exactly against
  golden) and a swept-sine go/no-go step (+/-2 dB mask at three
  deterministic frequencies).  The *hybrid* column is the union
  coverage computed from the two steps' exact channels
  (:func:`repro.prbist.campaign.hybrid_coverage`);
* **aliasing** — the campaign's realized aliasing rate against the
  ``2^-width`` bound of its signature register;
* **execution invariance** — the whole scenario replayed on the
  vectorized backend must reproduce every exact-channel field
  bit-identically (signatures included), with the throughput of both
  backends recorded.

The hybrid-dominance assertion (union coverage >= each family alone)
is size-independent and runs in smoke mode too; the measured full-size
coverage floors only apply to the committed scenario.
"""

import pathlib
import time

from repro.prbist import aliasing_bound, hybrid_coverage
from repro.scenarios import ScenarioSpec, run_scenario
from repro.scenarios.spec import CoverageStep, PseudorandomStep

HEAD_TO_HEAD_SPEC = (
    pathlib.Path(__file__).parent.parent
    / "examples" / "scenarios" / "prbist_head_to_head.json"
)

# Verdicts the go/no-go program counts as flagged; the pseudorandom
# side's equivalent is a signature mismatch ("detected").
FLAGGED = ("fail", "ambiguous")


def _smoke_spec() -> ScenarioSpec:
    """A tiny programmatic head-to-head: same shape, minimal cost."""
    committed = ScenarioSpec.from_json(HEAD_TO_HEAD_SPEC.read_text())
    return ScenarioSpec(
        name="prbist_head_to_head_smoke",
        description="tiny-N smoke variant of the committed head-to-head",
        analyzer=committed.analyzer,
        dut=committed.dut,
        seed=committed.seed,
        steps=(
            PseudorandomStep(
                name="pseudorandom", n_patterns=2, deviations=(0.5,),
                catastrophic=True, m_periods=10,
            ),
            CoverageStep(
                name="swept_sine", deviations=(0.5,),
                catastrophic=True, m_periods=10,
            ),
        ),
    )


def run_head_to_head(spec: ScenarioSpec) -> tuple[str, dict]:
    t0 = time.perf_counter()
    reference = run_scenario(spec, backend="reference")
    t_reference = time.perf_counter() - t0
    t0 = time.perf_counter()
    vectorized = run_scenario(spec, backend="vectorized")
    t_vectorized = time.perf_counter() - t0

    exact_identical = all(
        a.exact == b.exact for a, b in zip(reference.steps, vectorized.steps)
    )

    pr = reference.step("pseudorandom")
    sw = reference.step("swept_sine")
    assert pr.exact["fault_labels"] == sw.exact["fault_labels"], (
        "head-to-head steps enumerate different catalogs"
    )
    sweep_detected = [v in FLAGGED for v in sw.exact["verdicts"]]
    hybrid = hybrid_coverage(
        pr.exact["fault_labels"], pr.exact["detected"], sweep_detected
    )

    n_faults = len(hybrid.labels)
    sweep_coverage = sum(sweep_detected) / n_faults
    figures = {
        "n_faults": n_faults,
        "n_patterns": len(pr.floats["frequency_hz"]),
        "misr_width": pr.exact["misr_width"],
        "pseudorandom_coverage": pr.floats["coverage"],
        "sweep_coverage": sweep_coverage,
        "hybrid_coverage": hybrid.coverage,
        "aliasing_rate": pr.floats["aliasing_rate"],
        "aliasing_bound": aliasing_bound(pr.exact["misr_width"]),
        "exact_identical": exact_identical,
        "reference_s": t_reference,
        "vectorized_s": t_vectorized,
    }
    text = (
        f"PRB - head-to-head stimulus coverage "
        f"({n_faults} faults, {figures['n_patterns']} pseudorandom "
        f"patterns, {figures['misr_width']}-bit MISR)\n\n"
        f"pseudorandom (MISR signature)  : {figures['pseudorandom_coverage']:8.3f}\n"
        f"swept-sine (go/no-go flagged)  : {figures['sweep_coverage']:8.3f}\n"
        f"hybrid (union)                 : {figures['hybrid_coverage']:8.3f}"
        f"  ({len(hybrid.escapes)} escape(s))\n"
        f"aliasing rate (catalog)        : {figures['aliasing_rate']:8.4f}"
        f"  (bound 2^-{figures['misr_width']} = "
        f"{figures['aliasing_bound']:.2e})\n"
        f"exact channels ref == vec      : {exact_identical}\n"
        f"scenario wall time, reference  : {t_reference * 1e3:8.1f} ms\n"
        f"scenario wall time, vectorized : {t_vectorized * 1e3:8.1f} ms"
        f"  ({t_reference / t_vectorized:.1f} x)\n"
    )
    return text, figures


def test_prbist_campaign(benchmark, record_result, smoke):
    if smoke:
        text, figures = run_head_to_head(_smoke_spec())
    else:
        spec = ScenarioSpec.from_json(HEAD_TO_HEAD_SPEC.read_text())
        text, figures = benchmark.pedantic(
            run_head_to_head, args=(spec,), rounds=1, iterations=1
        )
    record_result("prbist_campaign", text)

    # Exact channels (signatures, verdicts, labels) never depend on the
    # backend — the engine's equivalence contract, held end to end.
    assert figures["exact_identical"]
    # Union coverage dominates each stimulus family by construction;
    # size-independent, so smoke asserts it too.
    assert figures["hybrid_coverage"] >= figures["pseudorandom_coverage"]
    assert figures["hybrid_coverage"] >= figures["sweep_coverage"]
    if smoke:
        return
    # Measured figures of the committed 30-fault head-to-head: the
    # pseudorandom signature comparison detects the full catalog (its
    # per-tone exactness sidesteps the mask-width escapes that cap the
    # go/no-go program), so the hybrid does too, and with every fault
    # detected nothing aliased.
    assert figures["n_faults"] == 30
    assert figures["pseudorandom_coverage"] == 1.0
    assert figures["sweep_coverage"] >= 0.85
    assert figures["hybrid_coverage"] == 1.0
    # The documented aliasing tolerance: within 5 binomial counting
    # sigmas of the 2^-width bound at the catalog's sample size.
    bound = figures["aliasing_bound"]
    tolerance = 5.0 * (bound * (1.0 - bound) / figures["n_faults"]) ** 0.5
    assert abs(figures["aliasing_rate"] - bound) <= tolerance
