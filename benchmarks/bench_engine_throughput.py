"""Experiment ENG — batch engine throughput: sweeps/second at scale.

Not a paper figure: this bench records the production-throughput gains
of the batch execution engine (PR "Batch execution engine for sweeps &
Monte-Carlo") on top of the paper's measurement pipeline:

* the vectorized evaluator fast path versus the reference sample loop
  (the per-point hot loop — ~70 % of a gain/phase measurement);
* serial versus process-parallel sweep execution at 4 workers, with the
  bit-identity guarantee checked on the side;
* the calibration cache hit rate over repeated sweeps (the paper's
  "calibration only needs to be performed once", enforced by the
  engine).

Parallel speedup is hardware-dependent (it needs free cores); the bench
records the measured figure and only asserts the >= 2x target when the
host actually has >= 4 CPUs.  Vectorization and caching gains are
hardware-independent and asserted unconditionally.
"""

import os
import time

import numpy as np

from repro.core.config import AnalyzerConfig
from repro.dut.active_rc import ActiveRCLowpass
from repro.engine import BatchRunner, CalibrationCache
from repro.evaluator.sigma_delta import FirstOrderSigmaDelta

M_PERIODS = 100
N_POINTS = 16
N_WORKERS = 4


def _time(fn, repeats=3):
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def run_engine_throughput(
    m_periods: int = M_PERIODS, n_points: int = N_POINTS
) -> tuple[str, dict]:
    dut = ActiveRCLowpass.from_specs(cutoff=1000.0)
    config = AnalyzerConfig.ideal(m_periods=m_periods)
    frequencies = np.geomspace(100.0, 20_000.0, n_points)

    # --- evaluator fast path vs reference loop ------------------------
    n = 96 * m_periods
    x = 0.3 * np.sin(2 * np.pi * np.arange(n) / 96)
    q = np.ones(n)
    fast_mod = FirstOrderSigmaDelta()
    loop_mod = FirstOrderSigmaDelta(vectorized=False)
    t_fast, _ = _time(lambda: fast_mod.modulate(x, q), repeats=5)
    t_loop, _ = _time(lambda: loop_mod.modulate(x, q), repeats=5)
    vec_speedup = t_loop / t_fast

    # --- serial vs parallel sweep -------------------------------------
    serial = BatchRunner(n_workers=1)
    parallel = BatchRunner(n_workers=N_WORKERS)
    t_serial, points_serial = _time(
        lambda: serial.run_sweep(dut, config, frequencies)
    )
    t_parallel, points_parallel = _time(
        lambda: parallel.run_sweep(dut, config, frequencies)
    )
    par_speedup = t_serial / t_parallel
    bit_identical = [
        (a.gain.value, a.phase_rad.value) for a in points_serial
    ] == [(b.gain.value, b.phase_rad.value) for b in points_parallel]

    # --- calibration cache over repeated sweeps -----------------------
    cache = CalibrationCache()
    runner = BatchRunner(n_workers=1, cache=cache)
    n_sweeps = 5
    t_cached, _ = _time(
        lambda: [runner.run_sweep(dut, config, frequencies) for _ in range(n_sweeps)],
        repeats=1,
    )
    hit_rate = cache.hit_rate

    figures = {
        "vectorized_speedup": vec_speedup,
        "parallel_speedup": par_speedup,
        "bit_identical": bit_identical,
        "cache_hit_rate": hit_rate,
        "serial_sweep_s": t_serial,
        "parallel_sweep_s": t_parallel,
        "cpus": os.cpu_count() or 1,
    }
    text = (
        f"ENG - engine throughput ({n_points} points, M = {m_periods})\n\n"
        f"evaluator fast path vs loop : {vec_speedup:8.1f} x\n"
        f"serial sweep                : {t_serial * 1e3:8.1f} ms\n"
        f"parallel sweep ({N_WORKERS} workers)  : {t_parallel * 1e3:8.1f} ms"
        f"  ({par_speedup:.2f} x, {figures['cpus']} CPU(s) available)\n"
        f"parallel == serial          : {bit_identical}\n"
        f"calibration cache hit rate  : {hit_rate:8.2f}"
        f"  over {n_sweeps} repeated sweeps\n"
    )
    return text, figures


def test_engine_throughput(benchmark, record_result, smoke):
    if smoke:
        text, figures = run_engine_throughput(m_periods=20, n_points=6)
        record_result("engine_throughput", text)
        # Correctness invariant holds at any size; timing targets do not.
        assert figures["bit_identical"]
        return
    text, figures = benchmark.pedantic(run_engine_throughput, rounds=1, iterations=1)
    record_result("engine_throughput", text)

    # Parallelism must never change the numbers.
    assert figures["bit_identical"]
    # The vectorized fast path carries the per-point cost; anything less
    # than 2x would mean the fast path is not engaged.
    assert figures["vectorized_speedup"] >= 2.0
    # One miss (the first sweep's calibration), hits ever after.
    assert figures["cache_hit_rate"] >= 0.75
    # The scaling target only stands where cores exist to scale onto.
    if (os.cpu_count() or 1) >= N_WORKERS:
        assert figures["parallel_speedup"] >= 2.0
