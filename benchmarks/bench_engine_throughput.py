"""Experiment ENG — batch engine throughput: sweeps/second at scale.

Not a paper figure: this bench records the production-throughput gains
of the batch execution engine (PR "Batch execution engine for sweeps &
Monte-Carlo") on top of the paper's measurement pipeline:

* the vectorized evaluator fast path versus the reference sample loop
  (the per-point hot loop — ~70 % of a gain/phase measurement);
* serial versus process-parallel sweep execution at 4 workers, with the
  bit-identity guarantee checked on the side;
* the calibration cache hit rate over repeated sweeps (the paper's
  "calibration only needs to be performed once", enforced by the
  engine);
* the **vectorized population backend**
  (:mod:`repro.engine.vectorized`) versus the serial reference backend
  on a fault-campaign population, in devices/second.  This is the
  single-core scaling lever: on a 1-CPU host process parallelism cannot
  help, while the population batch evaluates the whole catalog as
  stacked array operations.  The >= 5x devices/s target is asserted
  unconditionally — it is hardware-independent (both sides run on one
  core) — together with the exact-signature equivalence contract;
* the same backend comparison on a **noisy-generator population** — the
  configuration class that previously forced the reference fallback.
  The batched per-device stimulus render must beat the reference per-job
  render by >= 3x while keeping every integer signature bit-identical;
* a **chunked million-device lot** (``test_chunked_lot``): device-axis
  sharding must keep the exact channel independent of chunking and the
  peak footprint bounded by the chunk, not the lot.

Parallel speedup is hardware-dependent (it needs free cores); the bench
records the measured figure and only asserts the >= 2x target when the
host actually has >= 4 CPUs.  Vectorization and caching gains are
hardware-independent and asserted unconditionally.
"""

import os
import resource
import time
import tracemalloc

import numpy as np

from repro.bist.limits import SpecMask
from repro.bist.program import BISTProgram
from repro.core.config import AnalyzerConfig
from repro.dut.active_rc import ActiveRCLowpass, design_mfb_lowpass
from repro.dut.faults import fault_catalog
from repro.engine import BatchRunner, CalibrationCache
from repro.evaluator.sigma_delta import FirstOrderSigmaDelta
from repro.sc.opamp import OpAmpModel

M_PERIODS = 100
N_POINTS = 16
N_WORKERS = 4

#: Population shape of the backend comparison: a parametric fault
#: catalog around the demonstrator DUT, measured at three probe tones.
POPULATION_DEVIATIONS = (-0.5, -0.4, -0.3, -0.2, -0.1, 0.1, 0.2, 0.3, 0.4, 0.5)
POPULATION_FREQS = (300.0, 1000.0, 2000.0)
POPULATION_M = 40
POPULATION_SPEEDUP_TARGET = 5.0

#: The noisy-generator comparison: same population, but every job draws
#: its stimulus noise from a private seeded substream.  The reference
#: path renders each device's stimulus in a Python sample loop; the
#: vectorized path renders the whole slot as device-axis array steps.
NOISY_GENERATOR_RMS = 50e-6
NOISY_SPEEDUP_TARGET = 3.0

#: The chunked-lot experiment: a million Monte-Carlo devices streamed
#: through bounded memory.  The cheapest valid program (one probe tone,
#: M = 2) keeps the full-size run in minutes; the memory contract is
#: what the experiment is about.
LOT_DEVICES = 1_000_000
LOT_CHUNK = 20_000
LOT_M = 2
LOT_SIGMA = 0.03
LOT_SEED = 5
LOT_MAXRSS_MB = 2048.0


def _time(fn, repeats=3):
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def run_population_backend(
    m_periods: int = POPULATION_M,
    deviations=POPULATION_DEVIATIONS,
) -> dict:
    """Reference vs vectorized backend on one fault-campaign population.

    Both backends run serially on one core with a pre-warmed
    calibration cache, so the recorded devices/s ratio is pure backend
    efficiency.  Signature equality is checked on the side (the
    equivalence contract of :mod:`repro.engine.vectorized`).
    """
    golden = ActiveRCLowpass.from_specs(cutoff=1000.0)
    duts = [golden] + [f.apply(golden) for f in fault_catalog(deviations)]
    config = AnalyzerConfig.ideal(m_periods=m_periods)
    reference = BatchRunner(n_workers=1)
    vectorized = BatchRunner(n_workers=1, backend="vectorized")
    for runner in (reference, vectorized):
        runner.calibration_for(config, POPULATION_FREQS[0], m_periods)

    def campaign(runner):
        return runner.run_fault_trials(
            duts, config, POPULATION_FREQS, m_periods=m_periods
        )

    t_reference, trials_reference = _time(lambda: campaign(reference))
    t_vectorized, trials_vectorized = _time(lambda: campaign(vectorized))
    signatures_equal = all(
        a.output.signature == b.output.signature
        for trial_a, trial_b in zip(trials_reference, trials_vectorized)
        for a, b in zip(trial_a, trial_b)
    )
    return {
        "population_devices": len(duts),
        "reference_devices_per_s": len(duts) / t_reference,
        "vectorized_devices_per_s": len(duts) / t_vectorized,
        "population_speedup": t_reference / t_vectorized,
        "population_signatures_equal": signatures_equal,
    }


def run_noisy_population(
    m_periods: int = POPULATION_M,
    deviations=POPULATION_DEVIATIONS,
) -> dict:
    """Reference vs vectorized backend on a noisy-generator population.

    Same protocol as :func:`run_population_backend`, but the analyzer
    draws per-job generator noise (the configuration class that used to
    force the reference fallback).  The vectorized backend renders the
    noise-perturbed stimulus as one batched device-axis recurrence,
    consuming each job's substream in the reference order — so the
    signatures must still match bit for bit.
    """
    golden = ActiveRCLowpass.from_specs(cutoff=1000.0)
    duts = [golden] + [f.apply(golden) for f in fault_catalog(deviations)]
    config = AnalyzerConfig.ideal(
        m_periods=m_periods,
        generator_opamp=OpAmpModel(noise_rms=NOISY_GENERATOR_RMS),
        noise_seed=7,
    )
    reference = BatchRunner(n_workers=1)
    vectorized = BatchRunner(n_workers=1, backend="vectorized")
    for runner in (reference, vectorized):
        runner.calibration_for(config, POPULATION_FREQS[0], m_periods)

    def campaign(runner):
        return runner.run_fault_trials(
            duts, config, POPULATION_FREQS, m_periods=m_periods
        )

    t_reference, trials_reference = _time(lambda: campaign(reference))
    t_vectorized, trials_vectorized = _time(lambda: campaign(vectorized))
    signatures_equal = all(
        a.output.signature == b.output.signature
        for trial_a, trial_b in zip(trials_reference, trials_vectorized)
        for a, b in zip(trial_a, trial_b)
    )
    fell_back = vectorized.last_stats.backend != "vectorized"
    return {
        "noisy_devices": len(duts),
        "noisy_reference_devices_per_s": len(duts) / t_reference,
        "noisy_vectorized_devices_per_s": len(duts) / t_vectorized,
        "noisy_speedup": t_reference / t_vectorized,
        "noisy_signatures_equal": signatures_equal,
        "noisy_fell_back": fell_back,
    }


def run_engine_throughput(
    m_periods: int = M_PERIODS,
    n_points: int = N_POINTS,
    population_m: int = POPULATION_M,
    population_deviations=POPULATION_DEVIATIONS,
) -> tuple[str, dict]:
    dut = ActiveRCLowpass.from_specs(cutoff=1000.0)
    config = AnalyzerConfig.ideal(m_periods=m_periods)
    frequencies = np.geomspace(100.0, 20_000.0, n_points)

    # --- evaluator fast path vs reference loop ------------------------
    n = 96 * m_periods
    x = 0.3 * np.sin(2 * np.pi * np.arange(n) / 96)
    q = np.ones(n)
    fast_mod = FirstOrderSigmaDelta()
    loop_mod = FirstOrderSigmaDelta(vectorized=False)
    t_fast, _ = _time(lambda: fast_mod.modulate(x, q), repeats=5)
    t_loop, _ = _time(lambda: loop_mod.modulate(x, q), repeats=5)
    vec_speedup = t_loop / t_fast

    # --- serial vs parallel sweep -------------------------------------
    serial = BatchRunner(n_workers=1)
    parallel = BatchRunner(n_workers=N_WORKERS)
    t_serial, points_serial = _time(
        lambda: serial.run_sweep(dut, config, frequencies)
    )
    t_parallel, points_parallel = _time(
        lambda: parallel.run_sweep(dut, config, frequencies)
    )
    par_speedup = t_serial / t_parallel
    bit_identical = [
        (a.gain.value, a.phase_rad.value) for a in points_serial
    ] == [(b.gain.value, b.phase_rad.value) for b in points_parallel]

    # --- calibration cache over repeated sweeps -----------------------
    cache = CalibrationCache()
    runner = BatchRunner(n_workers=1, cache=cache)
    n_sweeps = 5
    t_cached, _ = _time(
        lambda: [runner.run_sweep(dut, config, frequencies) for _ in range(n_sweeps)],
        repeats=1,
    )
    hit_rate = cache.hit_rate

    figures = {
        "vectorized_speedup": vec_speedup,
        "parallel_speedup": par_speedup,
        "bit_identical": bit_identical,
        "cache_hit_rate": hit_rate,
        "serial_sweep_s": t_serial,
        "parallel_sweep_s": t_parallel,
        "cpus": os.cpu_count() or 1,
    }
    figures.update(
        run_population_backend(
            m_periods=population_m, deviations=population_deviations
        )
    )
    figures.update(
        run_noisy_population(
            m_periods=population_m, deviations=population_deviations
        )
    )
    text = (
        f"ENG - engine throughput ({n_points} points, M = {m_periods})\n\n"
        f"evaluator fast path vs loop : {vec_speedup:8.1f} x\n"
        f"serial sweep                : {t_serial * 1e3:8.1f} ms\n"
        f"parallel sweep ({N_WORKERS} workers)  : {t_parallel * 1e3:8.1f} ms"
        f"  ({par_speedup:.2f} x, {figures['cpus']} CPU(s) available)\n"
        f"parallel == serial          : {bit_identical}\n"
        f"calibration cache hit rate  : {hit_rate:8.2f}"
        f"  over {n_sweeps} repeated sweeps\n"
        f"\npopulation backend ({figures['population_devices']} devices x "
        f"{len(POPULATION_FREQS)} tones, M = {population_m}):\n"
        f"reference backend           : "
        f"{figures['reference_devices_per_s']:8.1f} devices/s\n"
        f"vectorized backend          : "
        f"{figures['vectorized_devices_per_s']:8.1f} devices/s"
        f"  ({figures['population_speedup']:.2f} x on one core)\n"
        f"signatures identical        : "
        f"{figures['population_signatures_equal']}\n"
        f"\nnoisy-generator population (same shape, per-job noise "
        f"substreams):\n"
        f"reference backend           : "
        f"{figures['noisy_reference_devices_per_s']:8.1f} devices/s\n"
        f"vectorized backend          : "
        f"{figures['noisy_vectorized_devices_per_s']:8.1f} devices/s"
        f"  ({figures['noisy_speedup']:.2f} x on one core)\n"
        f"signatures identical        : "
        f"{figures['noisy_signatures_equal']}"
        f"  (fallback: {figures['noisy_fell_back']})\n"
    )
    return text, figures


def run_chunked_lot(
    n_devices: int = LOT_DEVICES,
    chunk_size: int = LOT_CHUNK,
    probe_devices: int = 30_000,
    probe_chunk: int = 5_000,
    invariance_devices: int = 10_000,
) -> tuple[str, dict]:
    """A million-device Monte-Carlo lot streamed through bounded memory.

    Three claims, measured in order:

    * **chunk invariance** — the exact channel (device index, verdict,
      golden classification) is identical across backends and chunk
      sizes, including none;
    * **chunk-bounded footprint** — tracemalloc peak of a chunked
      mid-size lot scales with the chunk, not the lot (contrasted
      against the unchunked peak on the same lot);
    * **the full lot** — ``n_devices`` devices complete chunked, under
      a process-RSS high-water bound.  tracemalloc would multiply the
      minutes-long run, so the full row is bounded by ``ru_maxrss``
      instead; the mid-size tracemalloc contrast carries the precise
      scaling claim.

    Component draws come from one seeded RNG in device order, so the
    first ``invariance_devices`` of the full lot are the *same devices*
    as the small invariance lot — replaying the prefix checks the full
    run's exact channel against the unchunked reference backend.
    """
    nominal = design_mfb_lowpass(1000.0)
    frequencies = [1000.0]
    mask = SpecMask.from_golden(
        ActiveRCLowpass(nominal), frequencies, tolerance_db=2.0
    )
    program = BISTProgram(mask, frequencies, m_periods=LOT_M)
    config = AnalyzerConfig.ideal(m_periods=LOT_M)

    def lot(backend, chunk, n):
        runner = BatchRunner(backend=backend, chunk_size=chunk)
        runner.calibration_for(config, frequencies[0], LOT_M)
        return runner.run_trials(
            nominal,
            mask,
            program,
            n_devices=n,
            component_sigma=LOT_SIGMA,
            seed=LOT_SEED,
            config=config,
        )

    def key(trials):
        return [(t.device_index, t.verdict, t.truly_good) for t in trials]

    # --- exact channel vs chunking ------------------------------------
    baseline = key(lot("reference", None, invariance_devices))
    chunk_invariant = all(
        key(lot(backend, chunk, invariance_devices)) == baseline
        for backend, chunk in (
            ("reference", invariance_devices // 7),
            ("vectorized", None),
            ("vectorized", invariance_devices // 3),
        )
    )

    # --- tracemalloc contrast at mid size -----------------------------
    def traced_peak_mb(chunk):
        tracemalloc.start()
        lot("vectorized", chunk, probe_devices)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        return peak / 1e6

    peak_chunked_mb = traced_peak_mb(probe_chunk)
    peak_unchunked_mb = traced_peak_mb(None)

    # --- the full lot -------------------------------------------------
    start = time.perf_counter()
    trials = lot("vectorized", chunk_size, n_devices)
    lot_s = time.perf_counter() - start
    maxrss_mb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0
    lot_yield = sum(1 for t in trials if t.verdict == "pass") / len(trials)
    prefix_identical = key(trials[:invariance_devices]) == baseline

    figures = {
        "lot_devices": n_devices,
        "lot_chunk": chunk_size,
        "lot_s": lot_s,
        "lot_devices_per_s": n_devices / lot_s,
        "lot_yield": lot_yield,
        "lot_maxrss_mb": maxrss_mb,
        "chunk_invariant": chunk_invariant,
        "prefix_identical": prefix_identical,
        "probe_devices": probe_devices,
        "probe_chunk": probe_chunk,
        "peak_chunked_mb": peak_chunked_mb,
        "peak_unchunked_mb": peak_unchunked_mb,
    }
    text = (
        f"ENG - chunked lot ({n_devices} devices, chunk = {chunk_size}, "
        f"M = {LOT_M})\n\n"
        f"full lot                    : {lot_s:8.1f} s"
        f"  ({figures['lot_devices_per_s']:.0f} devices/s)\n"
        f"lot yield                   : {lot_yield:8.3f}\n"
        f"process RSS high water      : {maxrss_mb:8.1f} MB"
        f"  (bound {LOT_MAXRSS_MB:.0f} MB)\n"
        f"traced peak, chunked        : {peak_chunked_mb:8.1f} MB"
        f"  ({probe_devices} devices, chunk = {probe_chunk})\n"
        f"traced peak, unchunked      : {peak_unchunked_mb:8.1f} MB"
        f"  (same lot)\n"
        f"exact channel vs chunking   : {chunk_invariant}\n"
        f"full-lot prefix == baseline : {prefix_identical}\n"
    )
    return text, figures


def test_engine_throughput(benchmark, record_result, smoke):
    if smoke:
        text, figures = run_engine_throughput(
            m_periods=20,
            n_points=6,
            population_m=20,
            population_deviations=(-0.5, 0.5),
        )
        record_result("engine_throughput", text, figures)
        # Correctness invariants hold at any size; timing targets do not.
        assert figures["bit_identical"]
        assert figures["population_signatures_equal"]
        assert figures["noisy_signatures_equal"]
        assert not figures["noisy_fell_back"]
        return
    text, figures = benchmark.pedantic(run_engine_throughput, rounds=1, iterations=1)
    record_result("engine_throughput", text, figures)

    # Parallelism must never change the numbers.
    assert figures["bit_identical"]
    # The vectorized fast path carries the per-point cost; anything less
    # than 2x would mean the fast path is not engaged.
    assert figures["vectorized_speedup"] >= 2.0
    # One miss (the first sweep's calibration), hits ever after.
    assert figures["cache_hit_rate"] >= 0.75
    # The population backend must not change a single signature count...
    assert figures["population_signatures_equal"]
    # ...and must beat the serial reference by 5x on one core — the
    # whole point of the backend on hosts where parallelism cannot help.
    assert figures["population_speedup"] >= POPULATION_SPEEDUP_TARGET
    # Noisy-generator lots vectorize now (no fallback): bit-identical
    # signatures, and the batched stimulus render must pay for itself.
    assert figures["noisy_signatures_equal"]
    assert not figures["noisy_fell_back"]
    assert figures["noisy_speedup"] >= NOISY_SPEEDUP_TARGET
    # The scaling target only stands where cores exist to scale onto.
    if (os.cpu_count() or 1) >= N_WORKERS:
        assert figures["parallel_speedup"] >= 2.0


def test_chunked_lot(benchmark, record_result, smoke):
    if smoke:
        text, figures = run_chunked_lot(
            n_devices=1_500,
            chunk_size=400,
            probe_devices=600,
            probe_chunk=100,
            invariance_devices=300,
        )
        record_result("engine_chunked_lot", text, figures)
        # The exactness contract holds at any size; memory bounds are
        # only meaningful at full size.
        assert figures["chunk_invariant"]
        assert figures["prefix_identical"]
        return
    text, figures = benchmark.pedantic(run_chunked_lot, rounds=1, iterations=1)
    record_result("engine_chunked_lot", text, figures)

    # Chunking must never change the exact channel — across backends,
    # chunk sizes, and between the full lot and its replayed prefix.
    assert figures["chunk_invariant"]
    assert figures["prefix_identical"]
    # The footprint contract: a chunked lot's traced peak undercuts the
    # unchunked peak on the same lot (the working set follows the
    # chunk), and the million-device run stays under the RSS bound —
    # unchunked it would need several GB of response slabs alone.
    assert figures["peak_chunked_mb"] < 0.5 * figures["peak_unchunked_mb"]
    assert figures["lot_maxrss_mb"] < LOT_MAXRSS_MB
