"""Experiment ENG — batch engine throughput: sweeps/second at scale.

Not a paper figure: this bench records the production-throughput gains
of the batch execution engine (PR "Batch execution engine for sweeps &
Monte-Carlo") on top of the paper's measurement pipeline:

* the vectorized evaluator fast path versus the reference sample loop
  (the per-point hot loop — ~70 % of a gain/phase measurement);
* serial versus process-parallel sweep execution at 4 workers, with the
  bit-identity guarantee checked on the side;
* the calibration cache hit rate over repeated sweeps (the paper's
  "calibration only needs to be performed once", enforced by the
  engine);
* the **vectorized population backend**
  (:mod:`repro.engine.vectorized`) versus the serial reference backend
  on a fault-campaign population, in devices/second.  This is the
  single-core scaling lever: on a 1-CPU host process parallelism cannot
  help, while the population batch evaluates the whole catalog as
  stacked array operations.  The >= 5x devices/s target is asserted
  unconditionally — it is hardware-independent (both sides run on one
  core) — together with the exact-signature equivalence contract.

Parallel speedup is hardware-dependent (it needs free cores); the bench
records the measured figure and only asserts the >= 2x target when the
host actually has >= 4 CPUs.  Vectorization and caching gains are
hardware-independent and asserted unconditionally.
"""

import os
import time

import numpy as np

from repro.core.config import AnalyzerConfig
from repro.dut.active_rc import ActiveRCLowpass
from repro.dut.faults import fault_catalog
from repro.engine import BatchRunner, CalibrationCache
from repro.evaluator.sigma_delta import FirstOrderSigmaDelta

M_PERIODS = 100
N_POINTS = 16
N_WORKERS = 4

#: Population shape of the backend comparison: a parametric fault
#: catalog around the demonstrator DUT, measured at three probe tones.
POPULATION_DEVIATIONS = (-0.5, -0.4, -0.3, -0.2, -0.1, 0.1, 0.2, 0.3, 0.4, 0.5)
POPULATION_FREQS = (300.0, 1000.0, 2000.0)
POPULATION_M = 40
POPULATION_SPEEDUP_TARGET = 5.0


def _time(fn, repeats=3):
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def run_population_backend(
    m_periods: int = POPULATION_M,
    deviations=POPULATION_DEVIATIONS,
) -> dict:
    """Reference vs vectorized backend on one fault-campaign population.

    Both backends run serially on one core with a pre-warmed
    calibration cache, so the recorded devices/s ratio is pure backend
    efficiency.  Signature equality is checked on the side (the
    equivalence contract of :mod:`repro.engine.vectorized`).
    """
    golden = ActiveRCLowpass.from_specs(cutoff=1000.0)
    duts = [golden] + [f.apply(golden) for f in fault_catalog(deviations)]
    config = AnalyzerConfig.ideal(m_periods=m_periods)
    reference = BatchRunner(n_workers=1)
    vectorized = BatchRunner(n_workers=1, backend="vectorized")
    for runner in (reference, vectorized):
        runner.calibration_for(config, POPULATION_FREQS[0], m_periods)

    def campaign(runner):
        return runner.run_fault_trials(
            duts, config, POPULATION_FREQS, m_periods=m_periods
        )

    t_reference, trials_reference = _time(lambda: campaign(reference))
    t_vectorized, trials_vectorized = _time(lambda: campaign(vectorized))
    signatures_equal = all(
        a.output.signature == b.output.signature
        for trial_a, trial_b in zip(trials_reference, trials_vectorized)
        for a, b in zip(trial_a, trial_b)
    )
    return {
        "population_devices": len(duts),
        "reference_devices_per_s": len(duts) / t_reference,
        "vectorized_devices_per_s": len(duts) / t_vectorized,
        "population_speedup": t_reference / t_vectorized,
        "population_signatures_equal": signatures_equal,
    }


def run_engine_throughput(
    m_periods: int = M_PERIODS,
    n_points: int = N_POINTS,
    population_m: int = POPULATION_M,
    population_deviations=POPULATION_DEVIATIONS,
) -> tuple[str, dict]:
    dut = ActiveRCLowpass.from_specs(cutoff=1000.0)
    config = AnalyzerConfig.ideal(m_periods=m_periods)
    frequencies = np.geomspace(100.0, 20_000.0, n_points)

    # --- evaluator fast path vs reference loop ------------------------
    n = 96 * m_periods
    x = 0.3 * np.sin(2 * np.pi * np.arange(n) / 96)
    q = np.ones(n)
    fast_mod = FirstOrderSigmaDelta()
    loop_mod = FirstOrderSigmaDelta(vectorized=False)
    t_fast, _ = _time(lambda: fast_mod.modulate(x, q), repeats=5)
    t_loop, _ = _time(lambda: loop_mod.modulate(x, q), repeats=5)
    vec_speedup = t_loop / t_fast

    # --- serial vs parallel sweep -------------------------------------
    serial = BatchRunner(n_workers=1)
    parallel = BatchRunner(n_workers=N_WORKERS)
    t_serial, points_serial = _time(
        lambda: serial.run_sweep(dut, config, frequencies)
    )
    t_parallel, points_parallel = _time(
        lambda: parallel.run_sweep(dut, config, frequencies)
    )
    par_speedup = t_serial / t_parallel
    bit_identical = [
        (a.gain.value, a.phase_rad.value) for a in points_serial
    ] == [(b.gain.value, b.phase_rad.value) for b in points_parallel]

    # --- calibration cache over repeated sweeps -----------------------
    cache = CalibrationCache()
    runner = BatchRunner(n_workers=1, cache=cache)
    n_sweeps = 5
    t_cached, _ = _time(
        lambda: [runner.run_sweep(dut, config, frequencies) for _ in range(n_sweeps)],
        repeats=1,
    )
    hit_rate = cache.hit_rate

    figures = {
        "vectorized_speedup": vec_speedup,
        "parallel_speedup": par_speedup,
        "bit_identical": bit_identical,
        "cache_hit_rate": hit_rate,
        "serial_sweep_s": t_serial,
        "parallel_sweep_s": t_parallel,
        "cpus": os.cpu_count() or 1,
    }
    figures.update(
        run_population_backend(
            m_periods=population_m, deviations=population_deviations
        )
    )
    text = (
        f"ENG - engine throughput ({n_points} points, M = {m_periods})\n\n"
        f"evaluator fast path vs loop : {vec_speedup:8.1f} x\n"
        f"serial sweep                : {t_serial * 1e3:8.1f} ms\n"
        f"parallel sweep ({N_WORKERS} workers)  : {t_parallel * 1e3:8.1f} ms"
        f"  ({par_speedup:.2f} x, {figures['cpus']} CPU(s) available)\n"
        f"parallel == serial          : {bit_identical}\n"
        f"calibration cache hit rate  : {hit_rate:8.2f}"
        f"  over {n_sweeps} repeated sweeps\n"
        f"\npopulation backend ({figures['population_devices']} devices x "
        f"{len(POPULATION_FREQS)} tones, M = {population_m}):\n"
        f"reference backend           : "
        f"{figures['reference_devices_per_s']:8.1f} devices/s\n"
        f"vectorized backend          : "
        f"{figures['vectorized_devices_per_s']:8.1f} devices/s"
        f"  ({figures['population_speedup']:.2f} x on one core)\n"
        f"signatures identical        : "
        f"{figures['population_signatures_equal']}\n"
    )
    return text, figures


def test_engine_throughput(benchmark, record_result, smoke):
    if smoke:
        text, figures = run_engine_throughput(
            m_periods=20,
            n_points=6,
            population_m=20,
            population_deviations=(-0.5, 0.5),
        )
        record_result("engine_throughput", text)
        # Correctness invariants hold at any size; timing targets do not.
        assert figures["bit_identical"]
        assert figures["population_signatures_equal"]
        return
    text, figures = benchmark.pedantic(run_engine_throughput, rounds=1, iterations=1)
    record_result("engine_throughput", text)

    # Parallelism must never change the numbers.
    assert figures["bit_identical"]
    # The vectorized fast path carries the per-point cost; anything less
    # than 2x would mean the fast path is not engaged.
    assert figures["vectorized_speedup"] >= 2.0
    # One miss (the first sweep's calibration), hits ever after.
    assert figures["cache_hit_rate"] >= 0.75
    # The population backend must not change a single signature count...
    assert figures["population_signatures_equal"]
    # ...and must beat the serial reference by 5x on one core — the
    # whole point of the backend on hosts where parallelism cannot help.
    assert figures["population_speedup"] >= POPULATION_SPEEDUP_TARGET
    # The scaling target only stands where cores exist to scale onto.
    if (os.cpu_count() or 1) >= N_WORKERS:
        assert figures["parallel_speedup"] >= 2.0
