"""Experiment F10c — Fig. 10c: harmonic distortion measurement.

Paper: the DUT input is set to a 800 mVpp, 1.6 kHz sinewave; the
analyzer (M = 400) estimates the 2nd and 3rd harmonics of the filter
output, overlaid on the spectrum from a LeCroy WaveSurfer 422: analyzer
-56 dB / -65 dB vs scope -58 dB / -66 dB — "the agreement ... is
excellent".

The reproduction builds a Wiener DUT (the 1 kHz filter followed by a
weak polynomial tuned to HD2 = -57 dB, HD3 = -64.5 dB at the operating
level), measures with the analyzer, and compares against the
oscilloscope stand-in on the very same response waveform.  Evaluator
noise of 50 uV RMS provides the dither the silicon had.
"""

from repro.core.analyzer import NetworkAnalyzer
from repro.core.config import AnalyzerConfig
from repro.core.distortion import measure_distortion
from repro.dut.active_rc import ActiveRCLowpass
from repro.dut.nonlinear import WienerDUT, polynomial_for_distortion
from repro.reporting.tables import ascii_table
from repro.sc.opamp import OpAmpModel

STIMULUS_AMPLITUDE = 0.4  # 800 mVpp
FWAVE = 1600.0
M_PERIODS = 400
TARGET_HD2 = -57.0
TARGET_HD3 = -64.5


def run_fig10c(m_periods: int = M_PERIODS):
    linear = ActiveRCLowpass.from_specs(cutoff=1000.0)
    output_fundamental = STIMULUS_AMPLITUDE * linear.gain_at(FWAVE)
    dut = WienerDUT(
        linear, polynomial_for_distortion(output_fundamental, TARGET_HD2, TARGET_HD3)
    )
    analyzer = NetworkAnalyzer(
        dut,
        AnalyzerConfig.ideal(
            stimulus_amplitude=STIMULUS_AMPLITUDE,
            evaluator_opamp=OpAmpModel(noise_rms=50e-6),
            noise_seed=1600,
        ),
    )
    report = measure_distortion(analyzer, FWAVE, m_periods=m_periods)
    rows = []
    for row in report.rows:
        rows.append(
            [
                f"HD{row.harmonic}",
                row.level_dbc.value,
                f"[{row.level_dbc.lower:.1f}, {row.level_dbc.upper:.1f}]",
                row.reference_dbc,
                row.agreement_db,
            ]
        )
    text = ascii_table(
        [
            "harmonic",
            "analyzer (dBc)",
            "analyzer band",
            "oscilloscope (dBc)",
            "|delta| (dB)",
        ],
        rows,
        title=(
            "Fig. 10c - harmonic distortion of the DUT output "
            f"(800 mVpp, {FWAVE/1e3:.1f} kHz, M = {m_periods}; "
            "paper: -56/-65 analyzer vs -58/-66 scope)"
        ),
    )
    return text, report


def test_fig10c_harmonic_distortion(benchmark, record_result, smoke):
    if smoke:
        # M = 400 is what resolves -65 dBc harmonics; a tiny window can
        # only exercise the plumbing, not the paper's agreement claim.
        text, report = run_fig10c(m_periods=40)
        record_result("fig10c_harmonic_distortion", text)
        return
    text, report = benchmark.pedantic(run_fig10c, rounds=1, iterations=1)
    record_result("fig10c_harmonic_distortion", text)

    # Levels land in the paper's ballpark.
    assert abs(report.level_dbc(2).level_dbc.value - TARGET_HD2) < 2.5
    assert abs(report.level_dbc(3).level_dbc.value - TARGET_HD3) < 2.5
    # "The agreement between the commercial system and the proposed
    # network analyzer is excellent" (paper shows ~1-2 dB deltas).
    assert report.worst_agreement_db() < 2.5
