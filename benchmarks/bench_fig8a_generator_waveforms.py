"""Experiment F8a — Fig. 8a: generator output waveforms.

The paper shows three 62.5 kHz output waveforms with amplitudes 300, 500
and 600 mV programmed by reference voltages of +/-75, +/-125 and
+/-150 mV — i.e. a *linear* amplitude control with gain 2 from the
differential reference.

Our topology realizes a different constant overall gain (DESIGN.md), so
the series reports, for the same three target amplitudes: the programmed
reference (model and silicon-equivalent), the measured amplitude, and
the linearity of the control — which is the claim Fig. 8a demonstrates.
"""

import numpy as np

from repro.clocking.master import ClockTree
from repro.generator.design import amplitude_gain, va_for_amplitude
from repro.generator.sinewave_generator import SinewaveGenerator
from repro.reporting.tables import ascii_table
from repro.signals.spectrum import Spectrum

FWAVE = 62.5e3
TARGETS_MV = (300.0, 500.0, 600.0)
PAPER_REFS_MV = (75.0, 125.0, 150.0)  # +/- values; silicon gain = 2


def run_fig8a() -> tuple[str, list[float]]:
    clock = ClockTree.from_fwave(FWAVE)
    rows = []
    measured = []
    for target_mv, paper_ref in zip(TARGETS_MV, PAPER_REFS_MV):
        generator = SinewaveGenerator(clock)
        generator.set_amplitude(target_mv / 1000.0)
        wave = generator.render(16)
        spectrum = Spectrum.from_waveform(wave)
        amplitude = spectrum.amplitude_at(FWAVE)
        measured.append(amplitude)
        model_va = va_for_amplitude(target_mv / 1000.0) / 2.0
        rows.append(
            [
                f"+/-{paper_ref:.0f} mV",
                f"+/-{model_va * 1000:.1f} mV",
                target_mv,
                amplitude * 1000.0,
            ]
        )
    text = ascii_table(
        [
            "paper VA ref",
            "model VA ref",
            "target amplitude (mV)",
            "measured amplitude (mV)",
        ],
        rows,
        title=(
            f"Fig. 8a - generator amplitudes at {FWAVE/1e3:.1f} kHz "
            f"(model amplitude gain {amplitude_gain():.3f} V/V vs silicon 2)"
        ),
    )
    return text, measured


def test_fig8a_amplitude_programming(benchmark, record_result):
    text, measured = benchmark.pedantic(run_fig8a, rounds=1, iterations=1)
    record_result("fig8a_generator_waveforms", text)
    # Paper's shape: 300/500/600 mV for 75/125/150 -> exact linearity.
    ratios = np.array(measured) / measured[0]
    assert np.allclose(ratios, [1.0, 5.0 / 3.0, 2.0], rtol=1e-3)
    # And the programmed targets are achieved by the model.
    assert np.allclose(
        measured, np.array(TARGETS_MV) / 1000.0, rtol=0.02
    )
