"""Experiment CMP — the introduction's comparison against prior art.

Paper, Section I: the ref. [8] bandpass approach "is limited to
applications demanding a dynamic range below 40dB up to 10kHz, and the
frequency response extraction only deals with the magnitude
characterization"; ref. [9] "is signature-based, performing only a
structural test".  The proposed analyzer delivers magnitude AND phase
AND harmonic distortion with > 70 dB of range up to 20 kHz.

The bench runs all three schemes on the same demonstrator DUT.
"""

from repro.baselines.bandpass_analyzer import BandpassAmplitudeAnalyzer
from repro.baselines.sigma_delta_signature import StructuralSignatureTester
from repro.core.analyzer import NetworkAnalyzer
from repro.core.config import AnalyzerConfig
from repro.core.dynamic_range import system_dynamic_range
from repro.dut.active_rc import ActiveRCLowpass
from repro.dut.base import PassthroughDUT
from repro.reporting.tables import ascii_table

TEST_FREQ = 500.0


def run_comparison(m_periods: int = 200):
    dut = ActiveRCLowpass.from_specs(cutoff=1000.0)

    # Proposed network analyzer.
    analyzer = NetworkAnalyzer(dut, AnalyzerConfig.ideal(m_periods=m_periods))
    analyzer.calibrate(TEST_FREQ)
    point = analyzer.measure_gain_phase(TEST_FREQ)
    dr_analyzer = system_dynamic_range(
        NetworkAnalyzer(
            PassthroughDUT(), AnalyzerConfig.ideal(m_periods=m_periods)
        ),
        TEST_FREQ,
    )

    # Ref. [8] style bandpass + amplitude detector.
    bandpass = BandpassAmplitudeAnalyzer()
    bp_point = bandpass.measure_gain(dut, TEST_FREQ, stimulus_amplitude=0.4)

    # Ref. [9] style structural signature.
    signature = StructuralSignatureTester(frequency=TEST_FREQ)
    signature.learn_golden(dut)
    verdict = signature.test(ActiveRCLowpass.from_specs(cutoff=1000.0))

    rows = [
        [
            "proposed (this work)",
            f"{point.gain_db.value:+.2f}",
            f"{point.phase_deg.value:+.1f}",
            "yes",
            f"{min(dr_analyzer, 99.0):.0f}+",
            "20 kHz",
        ],
        [
            "bandpass + detector [8]",
            f"{bp_point.gain_db:+.2f}",
            "n/a",
            "no",
            f"{bandpass.dynamic_range_db():.0f}",
            f"{bandpass.max_frequency/1e3:.0f} kHz",
        ],
        [
            "sigma-delta signature [9]",
            "n/a",
            "n/a",
            "no",
            "n/a",
            "n/a",
        ],
    ]
    text = ascii_table(
        [
            "scheme",
            f"gain @ {TEST_FREQ:.0f} Hz (dB)",
            "phase (deg)",
            "THD capable",
            "dynamic range (dB)",
            "max freq",
        ],
        rows,
        title="Comparison against the prior-art BIST schemes (Section I)",
    )
    return text, point, bp_point, verdict, dr_analyzer


def test_comparison_prior_art(benchmark, record_result, smoke):
    if smoke:
        text, point, bp_point, verdict, dr_analyzer = run_comparison(
            m_periods=20
        )
        record_result("comparison_prior_art", text)
        return
    text, point, bp_point, verdict, dr_analyzer = benchmark.pedantic(
        run_comparison, rounds=1, iterations=1
    )
    record_result("comparison_prior_art", text)

    dut = ActiveRCLowpass.from_specs(cutoff=1000.0)
    truth = dut.gain_db_at(TEST_FREQ)
    # Both magnitude schemes read the gain; only ours reads phase.
    assert abs(point.gain_db.value - truth) < 0.1
    assert abs(bp_point.gain_db - truth) < 1.0
    assert abs(point.phase_deg.value - dut.phase_deg_at(TEST_FREQ)) < 1.0
    # The structural baseline yields only a verdict.
    assert verdict.passed
    # And the dynamic ranges separate by ~30 dB, as the paper claims.
    assert dr_analyzer > 70.0
    assert BandpassAmplitudeAnalyzer().dynamic_range_db() < 45.0
