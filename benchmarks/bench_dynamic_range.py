"""Experiment DR — the headline claim: 70 dB dynamic range up to 20 kHz.

Two characterizations:

* evaluator-only (Fig. 9's message: "the evaluator does not limit the
  dynamic range"): weak-tone detectability next to a near-full-scale
  carrier as a function of the evaluation window M;
* system-level: the analyzer's own residual harmonic floor on the
  calibration path across the audio band, for the ideal and the typical
  (0.35 um) configurations — the typical one is what caps the system
  near the paper's 70 dB.
"""

from repro.core.analyzer import NetworkAnalyzer
from repro.core.config import AnalyzerConfig
from repro.core.dynamic_range import (
    evaluator_dynamic_range,
    system_dynamic_range,
    theoretical_floor_dbc,
)
from repro.dut.base import PassthroughDUT
from repro.reporting.tables import ascii_table

M_GRID = (100, 200, 1000)
FREQS = (100.0, 1000.0, 20_000.0)


def run_dynamic_range(m_grid=M_GRID, freqs=FREQS, m_system: int = 200):
    rows_eval = []
    for m in m_grid:
        result = evaluator_dynamic_range(
            m_periods=m,
            levels_dbc=(-40.0, -50.0, -60.0, -70.0, -80.0, -90.0),
        )
        rows_eval.append(
            [m, result.dynamic_range_db, theoretical_floor_dbc(m)]
        )

    ideal = NetworkAnalyzer(
        PassthroughDUT(), AnalyzerConfig.ideal(m_periods=m_system)
    )
    typical = NetworkAnalyzer(
        PassthroughDUT(), AnalyzerConfig.typical(seed=2008, m_periods=m_system)
    )
    rows_sys = []
    for fwave in freqs:
        rows_sys.append(
            [
                fwave,
                system_dynamic_range(ideal, fwave),
                system_dynamic_range(typical, fwave),
            ]
        )

    text = (
        ascii_table(
            ["M (periods)", "evaluator DR (dB)", "eps floor (dBc)"],
            rows_eval,
            title="Evaluator dynamic range vs window size (carrier 0.4 V)",
        )
        + "\n\n"
        + ascii_table(
            ["fwave (Hz)", "ideal system DR (dB)", "typical 0.35um DR (dB)"],
            rows_sys,
            title=(
                f"System dynamic range across the band (M = {m_system}; "
                "paper claim: > 70 dB up to 20 kHz)"
            ),
        )
    )
    return text, rows_eval, rows_sys


def test_dynamic_range(benchmark, record_result, smoke):
    if smoke:
        # The 70 dB figures need M = 1000 windows; tiny windows only
        # exercise the probe and residual-floor plumbing.
        text, rows_eval, rows_sys = run_dynamic_range(
            m_grid=(100,), freqs=(1000.0,), m_system=40
        )
        record_result("dynamic_range", text)
        return
    text, rows_eval, rows_sys = benchmark.pedantic(
        run_dynamic_range, rounds=1, iterations=1
    )
    record_result("dynamic_range", text)

    # Evaluator: 70+ dB at M = 1000 and DR grows with M.
    dr_by_m = {row[0]: row[1] for row in rows_eval}
    assert dr_by_m[1000] >= 70.0
    assert dr_by_m[1000] >= dr_by_m[100]

    # System: >= 70 dB at every tested frequency up to 20 kHz; the
    # typical configuration sits near the paper's figure.
    for _f, ideal_dr, typical_dr in rows_sys:
        assert ideal_dr > 70.0
        assert typical_dr > 55.0
