"""Experiment F10a — Fig. 10a: Bode magnitude of the demonstrator DUT.

Paper: active-RC 2nd-order low-pass, 1 kHz cutoff, measured with M = 200
periods; plotted as measurement plus error band; "the relative error
increases as the response magnitude decreases".
"""

import numpy as np

from repro.core.analyzer import NetworkAnalyzer
from repro.core.bode import BodeResult
from repro.core.config import AnalyzerConfig
from repro.core.sweep import FrequencySweepPlan
from repro.dut.active_rc import ActiveRCLowpass
from repro.reporting.series import format_series

M_PERIODS = 200
N_POINTS = 21


def run_fig10a(
    m_periods: int = M_PERIODS, n_points: int = N_POINTS
) -> tuple[str, BodeResult, ActiveRCLowpass]:
    dut = ActiveRCLowpass.from_specs(cutoff=1000.0)
    analyzer = NetworkAnalyzer(dut, AnalyzerConfig.ideal(m_periods=m_periods))
    analyzer.calibrate(fwave=1000.0)
    plan = FrequencySweepPlan.paper_fig10(n_points=n_points)
    bode = BodeResult(tuple(analyzer.bode(plan.frequencies())))
    lo, hi = bode.gain_db_bounds()
    text = (
        f"Fig. 10a - Bode gain of the 1 kHz active-RC LPF (M = {m_periods})\n\n"
        + format_series(
            {
                "f (Hz)": bode.frequencies(),
                "gain (dB)": bode.gain_db(),
                "band lo": lo,
                "band hi": hi,
                "analytic": bode.truth_gain_db(dut),
            }
        )
    )
    return text, bode, dut


def test_fig10a_bode_magnitude(benchmark, record_result, smoke):
    if smoke:
        text, bode, dut = run_fig10a(m_periods=20, n_points=5)
    else:
        text, bode, dut = benchmark.pedantic(run_fig10a, rounds=1, iterations=1)
    record_result("fig10a_bode_magnitude", text)

    # The analytic response lies inside every error band — guaranteed
    # at any window size, smoke included.
    assert bode.truth_within_bounds(dut)
    if smoke:
        return
    # Shape: flat passband, rolloff past the cutoff — compared against
    # the analytic response at the actual grid frequencies.
    freqs = bode.frequencies()
    gains = bode.gain_db()
    truth = bode.truth_gain_db(dut)
    assert abs(gains[0] - truth[0]) < 0.2  # ~0 dB passband
    near_cutoff = np.argmin(np.abs(freqs - 1000.0))
    assert abs(gains[near_cutoff] - truth[near_cutoff]) < 0.2
    near_10k = np.argmin(np.abs(freqs - 10_000.0))
    assert truth[near_10k] < -35.0  # deep rolloff reached
    assert abs(gains[near_10k] - truth[near_10k]) < 1.0
    # "the relative error increases as the response magnitude decreases".
    lo, hi = bode.gain_db_bounds()
    widths = hi - lo
    assert widths[-1] > widths[0]
