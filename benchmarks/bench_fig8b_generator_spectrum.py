"""Experiment F8b — Fig. 8b: generator output spectrum, SFDR and THD.

Paper: 1 Vpp output at 62.5 kHz; "The SFDR is 70dB and the THD is 67dB.
However ... these results correspond to the continuous-time analysis of
a sampled signal.  A discrete-time application will improve these
figures."

Reproduced with the typical 0.35 um non-idealities (mismatch 0.1 %,
70 dB amplifiers, kT/C + amplifier noise).  Reported:

* in-band SFDR/THD of the *continuous-time held* output — the paper's
  measurement condition;
* the same figures for the discrete-time sequence — the paper's
  "will improve" remark;
* the out-of-band sampling images at 15/17 fwave (-23.5/-24.6 dBc by
  construction), which the audio band of interest excludes.
"""

import numpy as np

from repro.clocking.master import ClockTree
from repro.generator.sinewave_generator import SinewaveGenerator
from repro.reporting.tables import ascii_table
from repro.sc.mismatch import MismatchModel
from repro.sc.opamp import OpAmpModel
from repro.signals import metrics
from repro.signals.spectrum import Spectrum

FWAVE = 62.5e3
PERIODS = 256
IN_BAND = (1.0, 10 * FWAVE)  # through the first 10 harmonics


def build_generator(
    seed: int = 2008, prototype_switches: bool = False
) -> SinewaveGenerator:
    from repro.generator.design import PROTOTYPE_SWITCH_NONLINEARITY

    generator = SinewaveGenerator(
        ClockTree.from_fwave(FWAVE),
        opamp1=OpAmpModel.folded_cascode_035um(offset=0.3e-3),
        opamp2=OpAmpModel.folded_cascode_035um(offset=-0.2e-3),
        mismatch=MismatchModel(sigma_unit=0.001, seed=seed),
        rng=np.random.default_rng(seed),
        unit_capacitance=0.25e-12,
        switch_nonlinearity=(
            PROTOTYPE_SWITCH_NONLINEARITY if prototype_switches else None
        ),
    )
    generator.set_amplitude(0.5)  # 1 Vpp
    return generator


DIE_SEEDS = (2008, 7, 42, 99, 123)


def run_fig8b(
    periods: int = PERIODS, die_seeds=DIE_SEEDS
) -> tuple[str, dict]:
    # SFDR/THD are die-dependent (mismatch draw); Monte Carlo a few dies
    # to show the population the paper's single measured die came from.
    sfdr_dies = []
    thd_dies = []
    for seed in die_seeds:
        generator = build_generator(seed)
        held = generator.render_held(periods)
        spec = Spectrum.from_waveform(held.slice_samples(0, periods * 96))
        sfdr_dies.append(metrics.sfdr_db(spec, FWAVE, band=IN_BAND))
        thd_dies.append(metrics.thd_db(spec, FWAVE, n_harmonics=10))

    generator = build_generator(die_seeds[0])
    held = generator.render_held(periods)  # continuous-time view
    discrete = generator.render(periods)  # discrete-time view
    spec_ct = Spectrum.from_waveform(held.slice_samples(0, periods * 96))
    spec_dt = Spectrum.from_waveform(discrete.slice_samples(0, periods * 16))

    # With the prototype-calibrated switch nonlinearity (the
    # transistor-level effect the capacitive model omits), the model
    # lands on the paper's measured purity.
    proto = build_generator(die_seeds[0], prototype_switches=True)
    spec_proto = Spectrum.from_waveform(
        proto.render_held(periods).slice_samples(0, periods * 96)
    )

    figures = {
        "sfdr_ct_inband": metrics.sfdr_db(spec_ct, FWAVE, band=IN_BAND),
        "thd_ct": metrics.thd_db(spec_ct, FWAVE, n_harmonics=10),
        "sfdr_dt_inband": metrics.sfdr_db(spec_dt, FWAVE, band=IN_BAND),
        "thd_dt": metrics.thd_db(spec_dt, FWAVE, n_harmonics=8),
        "image15_dbc": spec_ct.dbc(15 * FWAVE, FWAVE),
        "image17_dbc": spec_ct.dbc(17 * FWAVE, FWAVE),
        "sfdr_min": float(np.min(sfdr_dies)),
        "sfdr_median": float(np.median(sfdr_dies)),
        "sfdr_max": float(np.max(sfdr_dies)),
        "thd_min": float(np.min(thd_dies)),
        "sfdr_prototype": metrics.sfdr_db(spec_proto, FWAVE, band=IN_BAND),
        "thd_prototype": metrics.thd_db(spec_proto, FWAVE, n_harmonics=10),
    }
    rows = [
        ["SFDR, in-band, CT held, die #1 (paper: 70 dB)", figures["sfdr_ct_inband"]],
        ["THD, CT held, die #1 (paper: 67 dB)", figures["thd_ct"]],
        ["SFDR with prototype switch NL (paper: 70 dB)", figures["sfdr_prototype"]],
        ["THD with prototype switch NL (paper: 67 dB)", figures["thd_prototype"]],
        [f"SFDR across {len(die_seeds)} dies: min", figures["sfdr_min"]],
        [f"SFDR across {len(die_seeds)} dies: median", figures["sfdr_median"]],
        [f"SFDR across {len(die_seeds)} dies: max", figures["sfdr_max"]],
        ["SFDR, in-band, DT sequence ('will improve')", figures["sfdr_dt_inband"]],
        ["THD, DT sequence", figures["thd_dt"]],
        ["image at 15 fwave (dBc; theory -23.5)", figures["image15_dbc"]],
        ["image at 17 fwave (dBc; theory -24.6)", figures["image17_dbc"]],
    ]
    text = ascii_table(
        ["figure", "value (dB)"],
        rows,
        title=(
            "Fig. 8b - generator spectrum at 1 Vpp, 62.5 kHz "
            "(typical 0.35 um non-idealities)"
        ),
    )
    return text, figures


def test_fig8b_spectrum(benchmark, record_result, smoke):
    if smoke:
        # Short renders over two dies: spectral purity figures need the
        # full 256-period window to resolve the paper's -70 dBc floor.
        text, figures = run_fig8b(periods=32, die_seeds=DIE_SEEDS[:2])
        record_result("fig8b_generator_spectrum", text)
        return
    text, figures = benchmark.pedantic(run_fig8b, rounds=1, iterations=1)
    record_result("fig8b_generator_spectrum", text)
    # Shape: SFDR/THD in the neighbourhood of the paper's ~70 dB,
    # limited by the same mechanism (mismatch-induced harmonics); the
    # die population brackets the paper's single measured die.
    assert 55.0 < figures["sfdr_ct_inband"] < 95.0
    assert 55.0 < figures["thd_ct"] < 95.0
    assert figures["sfdr_min"] < 90.0
    assert figures["sfdr_max"] > 65.0
    # The prototype-calibrated model lands on the paper's measurement.
    assert abs(figures["sfdr_prototype"] - 70.0) < 3.0
    assert abs(figures["thd_prototype"] - 67.0) < 5.0
    # Out-of-band images follow the 1/m law.
    assert abs(figures["image15_dbc"] + 23.5) < 1.5
    assert abs(figures["image17_dbc"] + 24.6) < 1.5
