"""Experiment T1 — Table I: generator design values and derived figures.

Regenerates the paper's Table I (normalized capacitor values) together
with the design quantities they imply under the documented topology
assumption: resonance placement relative to the synthesized tone,
quality factor, passband gain, stability.
"""

from repro.generator.design import PAPER_CAPACITORS, design_summary
from repro.reporting.tables import ascii_table


def build_table1_report() -> tuple[str, dict]:
    caps_rows = [
        ["A", PAPER_CAPACITORS.a],
        ["B", PAPER_CAPACITORS.b],
        ["C", PAPER_CAPACITORS.c],
        ["D", PAPER_CAPACITORS.d],
        ["F", PAPER_CAPACITORS.f],
        ["Cin", "CI(t) = 2 sin(k pi/8)"],
    ]
    summary = design_summary()
    derived_rows = [
        ["f0 / fgen", summary["f0_over_fgen"]],
        ["f0 / fwave", summary["f0_over_fwave"]],
        ["Q", summary["q"]],
        ["|H(fwave)|", summary["gain_at_fwave"]],
        ["amplitude gain (V/V)", summary["amplitude_gain"]],
        ["stable", summary["stable"]],
    ]
    text = (
        ascii_table(["capacitor", "normalized value"], caps_rows,
                    title="Table I - normalized capacitor values (paper)")
        + "\n\n"
        + ascii_table(["derived design figure", "value"], derived_rows,
                      title="Derived from Table I (this reproduction's topology)")
    )
    return text, summary


def test_table1_design_values(benchmark, record_result):
    text, summary = benchmark.pedantic(
        build_table1_report, rounds=1, iterations=1
    )
    record_result("table1_generator_design", text)
    # Shape assertions: the biquad is stable, resonates on the tone,
    # with moderate Q — the design the paper's generator requires.
    assert summary["stable"]
    assert 0.85 < summary["f0_over_fwave"] < 1.05
    assert 0.8 < summary["q"] < 1.5
