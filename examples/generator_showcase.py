"""Generator deep-dive: waveforms, spectrum, and the step-count trade-off.

Walks through the sinewave generator the way Section III.A and Fig. 8 of
the paper do:

1. render the 62.5 kHz output at the three programmed amplitudes of
   Fig. 8a;
2. show the spectral structure: the pure discrete-time tone, the
   continuous-time sampling images at 15/17 fwave, and the in-band
   spurs a mismatched die adds (Fig. 8b);
3. explore the P-step design space (the generator's natural extension):
   more array capacitors -> purer staircase.

Run:  python examples/generator_showcase.py
"""

import numpy as np

from repro.clocking.master import ClockTree
from repro.generator import SinewaveGenerator, multistep
from repro.sc.mismatch import MismatchModel
from repro.signals import metrics
from repro.signals.spectrum import Spectrum

FWAVE = 62.5e3


def waveform_section() -> None:
    print("-- Fig. 8a: programmable amplitude --")
    clock = ClockTree.from_fwave(FWAVE)
    for target_mv in (300.0, 500.0, 600.0):
        generator = SinewaveGenerator(clock)
        generator.set_amplitude(target_mv / 1000.0)
        wave = generator.render(16)
        spectrum = Spectrum.from_waveform(wave)
        print(
            f"  target {target_mv:5.0f} mV -> measured "
            f"{spectrum.amplitude_at(FWAVE) * 1e3:6.1f} mV "
            f"(VA diff = {generator.control.va_differential * 1e3:6.1f} mV)"
        )


def spectrum_section() -> None:
    print("\n-- Fig. 8b: spectral structure --")
    clock = ClockTree.from_fwave(FWAVE)

    ideal = SinewaveGenerator(clock)
    ideal.set_amplitude(0.5)
    held = ideal.render_held(128)
    spec = Spectrum.from_waveform(held.slice_samples(0, 128 * 96))
    print(
        f"  ideal die:  image@15f = {spec.dbc(15 * FWAVE, FWAVE):6.1f} dBc "
        f"(law: -23.5), image@17f = {spec.dbc(17 * FWAVE, FWAVE):6.1f} dBc "
        f"(law: -24.6)"
    )
    in_band = (1.0, 10 * FWAVE)
    print(
        f"              in-band SFDR = "
        f"{min(metrics.sfdr_db(spec, FWAVE, band=in_band), 200):6.1f} dB "
        "(pure sampled sine)"
    )

    for seed in (1, 2, 3):
        die = SinewaveGenerator(
            clock, mismatch=MismatchModel(sigma_unit=0.001, seed=seed)
        )
        die.set_amplitude(0.5)
        held = die.render_held(128)
        spec = Spectrum.from_waveform(held.slice_samples(0, 128 * 96))
        print(
            f"  die #{seed}:     in-band SFDR = "
            f"{metrics.sfdr_db(spec, FWAVE, band=in_band):6.1f} dB "
            f"(0.1% mismatch; paper measured 70 dB)"
        )


def multistep_section() -> None:
    print("\n-- design space: steps per period vs purity --")
    print(f"  {'P':>4} {'caps':>5} {'total C (units)':>16} {'first image':>12}")
    for row in multistep.purity_comparison((8, 16, 32, 64)):
        marker = "  <- paper" if row["steps"] == 16 else ""
        print(
            f"  {row['steps']:>4} {row['capacitors']:>5} "
            f"{row['total_capacitance']:>16.2f} "
            f"{row['first_image_dbc']:>9.1f} dBc{marker}"
        )
    print(
        "  Doubling the steps buys ~6 dB of image suppression per octave "
        "at the cost of doubling the input capacitor array."
    )


def main() -> None:
    waveform_section()
    spectrum_section()
    multistep_section()


if __name__ == "__main__":
    main()
