"""Parameter extraction: from bounded Bode points to fc / Q / gain.

Production specs talk in corner frequency, quality factor and DC gain.
This example measures a device with the BIST analyzer, fits the
second-order model to the bounded Bode data (weighted by the analyzer's
own error bands), and screens the extracted parameters against limits —
first for a good device, then for one with a shifted component.

Run:  python examples/parameter_extraction.py
"""

from repro import AnalyzerConfig, FrequencySweepPlan, NetworkAnalyzer
from repro.core import BodeResult, fit_second_order_lowpass, parameter_screen
from repro.dut import ActiveRCLowpass


def measure(dut) -> BodeResult:
    analyzer = NetworkAnalyzer(dut, AnalyzerConfig.ideal(m_periods=40))
    analyzer.calibrate(1000.0)
    plan = FrequencySweepPlan(100.0, 10_000.0, 13)
    return BodeResult(tuple(analyzer.bode(plan.frequencies())))


def report(label: str, dut) -> None:
    bode = measure(dut)
    fit = fit_second_order_lowpass(bode)
    print(
        f"{label}: f0 = {fit.f0:7.1f} Hz, Q = {fit.q:.3f}, "
        f"gain = {fit.gain_db:+.2f} dB "
        f"(RMS misfit {fit.residual_db_rms:.2f} dB over {fit.n_points} points)"
    )
    screen = parameter_screen(
        bode,
        f0_limits=(900.0, 1100.0),
        q_limits=(0.6, 0.85),
        gain_db_limits=(-0.5, 0.5),
    )
    flags = [
        name
        for name, ok in (
            ("f0", screen.f0_ok),
            ("Q", screen.q_ok),
            ("gain", screen.gain_ok),
        )
        if not ok
    ]
    verdict = "PASS" if screen.passed else f"FAIL ({', '.join(flags)} out of limits)"
    print(f"         parameter screen: {verdict}")


def main() -> None:
    print("limits: f0 in [900, 1100] Hz, Q in [0.6, 0.85], gain in +/-0.5 dB\n")
    report("good device   ", ActiveRCLowpass.from_specs(cutoff=1000.0))
    report("drifted device", ActiveRCLowpass.from_specs(cutoff=1000.0).with_fault("c2", 0.4))


if __name__ == "__main__":
    main()
