"""Full frequency-response characterization (the paper's Fig. 10a/b).

Sweeps the master clock over 100 Hz .. 20 kHz, measures bounded gain and
phase of the demonstrator DUT at M = 200 periods per point, and prints
the Bode series with error bands next to the analytic response —
an ASCII rendition of Fig. 10.

Run:  python examples/bode_characterization.py
"""

from repro import AnalyzerConfig, FrequencySweepPlan, NetworkAnalyzer
from repro.core.bode import BodeResult
from repro.dut import ActiveRCLowpass
from repro.reporting.series import format_series


def main() -> None:
    dut = ActiveRCLowpass.from_specs(cutoff=1000.0)
    analyzer = NetworkAnalyzer(dut, AnalyzerConfig.ideal(m_periods=200))
    analyzer.calibrate(fwave=1000.0)

    plan = FrequencySweepPlan.paper_fig10(n_points=17)
    print(
        f"sweeping {plan.f_start:.0f} Hz .. {plan.f_stop:.0f} Hz "
        f"({plan.n_points} points, M = 200 periods per point)..."
    )
    bode = BodeResult(tuple(analyzer.bode(plan.frequencies())))

    gain_lo, gain_hi = bode.gain_db_bounds()
    print("\n-- Bode magnitude (compare paper Fig. 10a) --")
    print(
        format_series(
            {
                "f (Hz)": bode.frequencies(),
                "gain dB": bode.gain_db(),
                "lo": gain_lo,
                "hi": gain_hi,
                "analytic": bode.truth_gain_db(dut),
            },
            digits=4,
        )
    )

    phase_lo, phase_hi = bode.phase_deg_bounds()
    print("\n-- Bode phase (compare paper Fig. 10b) --")
    print(
        format_series(
            {
                "f (Hz)": bode.frequencies(),
                "phase deg": bode.phase_deg(),
                "lo": phase_lo,
                "hi": phase_hi,
                "analytic": bode.truth_phase_deg(dut),
            },
            digits=4,
        )
    )

    contained = bode.truth_within_bounds(dut)
    print(f"\nanalytic response inside every error band: {contained}")
    print(
        "Note how the bands widen as the response magnitude decreases — "
        "the paper: 'the relative error increases as the response "
        "magnitude decreases. If a better precision is needed, it can be "
        "achieved increasing the number of evaluation periods.'"
    )


if __name__ == "__main__":
    main()
