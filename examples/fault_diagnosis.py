"""Fault dictionary & diagnosis: from pass/fail to *which component*.

The BIST program says a device failed; the next question on every test
floor is which fault explains the measurement.  This example walks the
whole `repro.faults` flow on the demonstrator DUT:

1. enumerate a fault catalog — parametric deviations plus catastrophic
   shorts/opens — and run it as an engine **fault campaign** (one cached
   calibration for the entire catalog, bit-identical at any worker
   count);
2. inspect the resulting **fault dictionary**: which faults are
   detectable at all, and which form ambiguity groups no measurement at
   these probes can split;
3. compact the dictionary to the three most discriminating **probe
   frequencies** (the production program measures 3 points, not 10);
4. **diagnose** devices with injected faults from their measured
   signatures — ranked candidates plus the honest ambiguity group;
5. round-trip the dictionary through JSON, the form a test floor stores
   next to the program.

Run:  PYTHONPATH=src python examples/fault_diagnosis.py
"""

import time

from repro.api import ExecutionPolicy, Session
from repro.core.sweep import FrequencySweepPlan
from repro.dut import ActiveRCLowpass, CatastrophicFault, ParametricFault
from repro.dut.faults import full_catalog
from repro.faults import (
    FaultCampaign,
    FaultDictionary,
    diagnose,
    measure_signature,
    select_probe_frequencies,
)


def main() -> None:
    dut = ActiveRCLowpass.from_specs(cutoff=1000.0)
    catalog = full_catalog((-0.5, -0.2, 0.2, 0.5))
    plan = FrequencySweepPlan.around(1000.0, decades=1.5, n_points=10)

    # -- 1. the campaign: one job per faulty device -----------------
    # One session = one shared calibration cache and worker pool for
    # the campaign and every diagnosis-time measurement after it (the
    # with-block releases the pool when the program is done).
    with Session(dut, policy=ExecutionPolicy(n_workers=2)) as session:
        campaign = FaultCampaign(dut, catalog, plan, m_periods=40)
        t0 = time.perf_counter()
        dictionary = campaign.run(session=session)
        elapsed = time.perf_counter() - t0
        print(
            f"campaign: {len(catalog)} faults x "
            f"{len(dictionary.frequencies)} frequencies in {elapsed:.2f} s "
            f"({session.cache.misses} calibration acquisition(s))\n"
        )
        _walk_dictionary(dut, dictionary, session)

    # -- 5. the dictionary survives a round trip to disk -------------
    production = dictionary.restrict(select_probe_frequencies(dictionary, 3))
    clone = FaultDictionary.from_json(production.to_json())
    print(f"JSON round-trip exact: {clone == production}")


def _walk_dictionary(dut, dictionary, session) -> None:
    """Steps 2-4: inspect, compact and diagnose against the dictionary."""
    # -- 2. what the dictionary knows --------------------------------
    undetectable = [l for l in dictionary.labels if not dictionary.detectable(l)]
    print(f"undetectable faults at this plan: {undetectable or 'none'}")
    groups = [g for g in dictionary.ambiguity_groups() if len(g) > 1]
    print(f"ambiguity groups (full plan): {groups or 'none'}\n")

    # -- 3. compact to the most discriminating probes ----------------
    probes = select_probe_frequencies(dictionary, 3)
    production = dictionary.restrict(probes)
    print("production probes:", ", ".join(f"{f:.0f} Hz" for f in probes))
    groups = [g for g in production.ambiguity_groups() if len(g) > 1]
    print(f"ambiguity groups (3 probes): {groups or 'none'}\n")

    # -- 4. diagnose injected faults ---------------------------------
    for fault in (
        ParametricFault("r2", 0.5),
        CatastrophicFault("c1", "open"),
        CatastrophicFault("r1", "open"),  # lives in an ambiguity group
    ):
        signature = measure_signature(
            fault.apply(dut),
            probes,
            m_periods=40,
            label=fault.label,
            session=session,
        )
        result = diagnose(signature, production, top_n=3)
        ranked = ", ".join(
            f"{c.label} (gap {c.separation:.1f})" for c in result.candidates
        )
        print(f"injected {fault.label:10s} -> best {result.best.label:10s}")
        print(f"  ranked    : {ranked}")
        print(f"  ambiguity : {', '.join(result.ambiguity_group)}")
        print(f"  correct   : {result.names(fault.label)}\n")


if __name__ == "__main__":
    main()
