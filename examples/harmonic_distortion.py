"""Harmonic distortion measurement (the paper's Fig. 10c scenario).

Builds a weakly nonlinear DUT (the 1 kHz filter followed by an op-amp
style polynomial nonlinearity), drives it with the paper's 800 mVpp
1.6 kHz stimulus, and measures HD2/HD3 with the analyzer — comparing
against the oscilloscope stand-in exactly as the paper compares against
the LeCroy WaveSurfer.

Run:  python examples/harmonic_distortion.py
"""

from repro import AnalyzerConfig, NetworkAnalyzer, measure_distortion
from repro.dut import ActiveRCLowpass, WienerDUT, polynomial_for_distortion
from repro.sc.opamp import OpAmpModel


def main() -> None:
    stimulus_amplitude = 0.4  # 800 mVpp
    fwave = 1600.0

    linear = ActiveRCLowpass.from_specs(cutoff=1000.0)
    output_fundamental = stimulus_amplitude * linear.gain_at(fwave)
    nonlinearity = polynomial_for_distortion(
        output_fundamental, hd2_db=-57.0, hd3_db=-64.5
    )
    dut = WienerDUT(linear, nonlinearity)
    print(f"DUT: {dut.name}")
    print(
        f"stimulus: {stimulus_amplitude * 2 * 1e3:.0f} mVpp at {fwave:.0f} Hz; "
        f"output fundamental ~ {output_fundamental * 1e3:.1f} mV"
    )

    # The evaluator carries a trace of amplifier noise: at these levels
    # the harmonic counts are ~10, and noise dithers the quantizer just
    # as thermal noise did in the silicon.
    analyzer = NetworkAnalyzer(
        dut,
        AnalyzerConfig.ideal(
            stimulus_amplitude=stimulus_amplitude,
            evaluator_opamp=OpAmpModel(noise_rms=50e-6),
            noise_seed=1600,
        ),
    )
    report = measure_distortion(analyzer, fwave, m_periods=400)

    print(f"\n{'':>9} | {'analyzer (dBc)':>15} | {'scope (dBc)':>11} | |delta|")
    for row in report.rows:
        print(
            f"{'HD%d' % row.harmonic:>9} | {row.level_dbc.value:15.2f} | "
            f"{row.reference_dbc:11.2f} | {row.agreement_db:.2f} dB"
        )
    print(
        f"\nworst disagreement: {report.worst_agreement_db():.2f} dB "
        "(paper: analyzer -56/-65 dB vs scope -58/-66 dB — 'the agreement "
        "... is excellent')"
    )
    print(
        "Measurements took M = 400 periods, as in the paper; 'if a better "
        "precision is needed, it can be achieved just by increasing this "
        "number.'"
    )


if __name__ == "__main__":
    main()
