"""Production go/no-go BIST with fault coverage — the paper's motivation.

Section I frames the analyzer as a BIST block: move the frequency-
response test on chip, keep only a slow digital interface to the ATE.
This example closes that loop:

1. derive a spec mask from the golden DUT (+/-2 dB at three test tones);
2. run the go/no-go program on a good device -> pass;
3. run it on devices with injected parametric faults -> fail;
4. sweep a standard fault catalog and report coverage.

Run:  python examples/bist_go_nogo.py
"""

from repro import AnalyzerConfig, NetworkAnalyzer
from repro.bist import BISTProgram, SpecMask, fault_coverage
from repro.dut import ActiveRCLowpass
from repro.dut.faults import fault_catalog

TEST_FREQUENCIES = [300.0, 1000.0, 2000.0]


def main() -> None:
    golden = ActiveRCLowpass.from_specs(cutoff=1000.0)
    mask = SpecMask.from_golden(golden, TEST_FREQUENCIES, tolerance_db=2.0)
    program = BISTProgram(mask, TEST_FREQUENCIES, m_periods=40)
    print(
        f"test program: {len(TEST_FREQUENCIES)} tones, M = 40 periods each, "
        f"+/-2 dB limits"
    )

    # Good device.
    analyzer = NetworkAnalyzer(golden, AnalyzerConfig.ideal(m_periods=40))
    report = program.run(analyzer)
    print(f"\ngood device verdict: {report.verdict.upper()}")
    for point in report.points:
        print(
            f"  {point.frequency:7.0f} Hz: measured "
            f"[{point.gain_db_lower:+6.2f}, {point.gain_db_upper:+6.2f}] dB "
            f"within [{point.limit_lo_db:+6.2f}, {point.limit_hi_db:+6.2f}] "
            f"-> {point.verdict}"
        )

    # One obviously bad device.
    faulty = golden.with_fault("c2", 0.5)
    report_bad = program.run(NetworkAnalyzer(faulty, AnalyzerConfig.ideal(m_periods=40)))
    print(f"\nfaulty device ({faulty.name}) verdict: {report_bad.verdict.upper()}")
    for point in report_bad.failed_points:
        print(
            f"  FAIL at {point.frequency:.0f} Hz: "
            f"[{point.gain_db_lower:+6.2f}, {point.gain_db_upper:+6.2f}] dB "
            f"outside [{point.limit_lo_db:+6.2f}, {point.limit_hi_db:+6.2f}]"
        )

    # Coverage over the standard catalog (+/-20 %, +/-50 % per component).
    catalog = fault_catalog()
    print(f"\nevaluating coverage over {len(catalog)} single-component faults...")
    coverage = fault_coverage(golden, catalog, program)
    print(
        f"fault coverage: {coverage.coverage:.0%} hard-fail, "
        f"{coverage.flagged:.0%} flagged (fail or inconclusive)"
    )
    if coverage.escapes:
        escaped = ", ".join(t.fault.label for t in coverage.escapes)
        print(f"test escapes (small parametric shifts): {escaped}")

    # Monte-Carlo production lot: yield, escapes, overkill.
    from repro.bist import yield_analysis

    print("\nsimulating a 24-device lot with 6% component spread...")
    lot = yield_analysis(
        golden.components,
        mask,
        program,
        n_devices=24,
        component_sigma=0.06,
        seed=5,
    )
    print(
        f"test yield {lot.test_yield:.0%} vs true yield {lot.true_yield:.0%}; "
        f"escapes {lot.escape_rate:.0%}, overkill {lot.overkill_rate:.0%}, "
        f"inconclusive {lot.ambiguous_rate:.0%}"
    )


if __name__ == "__main__":
    main()
