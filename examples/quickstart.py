"""Quickstart: measure one Bode point of an analog filter with the BIST
network analyzer.

The flow mirrors how the silicon is used:

1. build the DUT (here: the paper's 1 kHz active-RC low-pass);
2. bind a NetworkAnalyzer to it;
3. calibrate once on the bypass path (Section III.C of the paper);
4. measure gain and phase at any frequency by retuning the master clock.

Run:  python examples/quickstart.py
"""

from repro import AnalyzerConfig, NetworkAnalyzer
from repro.dut import ActiveRCLowpass


def main() -> None:
    dut = ActiveRCLowpass.from_specs(cutoff=1000.0)
    print(f"DUT: {dut.name}  (fc = {dut.cutoff:.1f} Hz, Q = {dut.q_factor:.3f})")

    analyzer = NetworkAnalyzer(dut, AnalyzerConfig.ideal())
    calibration = analyzer.calibrate(fwave=1000.0)
    print(
        f"calibrated: stimulus amplitude = {calibration.amplitude.value * 1e3:.2f} mV "
        f"(interval [{calibration.amplitude.lower * 1e3:.2f}, "
        f"{calibration.amplitude.upper * 1e3:.2f}] mV)"
    )

    print(f"\n{'f (Hz)':>9} | {'gain (dB)':>22} | {'phase (deg)':>24} | truth")
    for fwave in (100.0, 500.0, 1000.0, 2000.0, 5000.0, 20_000.0):
        point = analyzer.measure_gain_phase(fwave)
        gain = point.gain_db
        phase = point.phase_deg
        print(
            f"{fwave:9.0f} | {gain.value:+7.2f} [{gain.lower:+7.2f},{gain.upper:+7.2f}]"
            f" | {phase.value:+8.2f} [{phase.lower:+8.2f},{phase.upper:+8.2f}]"
            f" | {dut.gain_db_at(fwave):+7.2f} dB, {dut.phase_deg_at(fwave):+8.2f} deg"
        )

    print(
        "\nEvery bracket is a *guaranteed* interval from the bounded "
        "sigma-delta quantization error (paper eqs. (3)-(5)) plus the "
        "stimulus-image budget; note how the analytic truth sits inside."
    )


if __name__ == "__main__":
    main()
