"""Batch execution: production-throughput sweeps and Monte-Carlo lots.

The paper's analyzer is a production-test instrument, and production
cares about throughput — Bode sweeps per second, devices dispositioned
per wafer.  This example drives the batch engine through both flows:

1. a frequency sweep as a parallel job batch, demonstrating that the
   numbers are bit-identical to the serial run (deterministic per-job
   seeding);
2. repeated sweeps sharing one cached calibration (the paper's
   "calibration only needs to be performed once", enforced by the
   engine);
3. a Monte-Carlo yield analysis of a 20-device lot.

Run:  PYTHONPATH=src python examples/batch_sweep.py
"""

import time

import numpy as np

from repro import AnalyzerConfig, BatchRunner, ExecutionPolicy, Session
from repro.bist import BISTProgram, SpecMask
from repro.dut import ActiveRCLowpass, design_mfb_lowpass


def main() -> None:
    dut = ActiveRCLowpass.from_specs(cutoff=1000.0)
    config = AnalyzerConfig.ideal(m_periods=100)
    frequencies = np.geomspace(100.0, 20_000.0, 15)

    # -- 1. parallel == serial --------------------------------------
    serial = BatchRunner(n_workers=1)
    parallel = BatchRunner(n_workers=4)
    t0 = time.perf_counter()
    bode_serial = serial.run_bode(dut, config, frequencies)
    t1 = time.perf_counter()
    bode_parallel = parallel.run_bode(dut, config, frequencies)
    t2 = time.perf_counter()
    identical = np.array_equal(bode_serial.gain_db(), bode_parallel.gain_db())
    print(f"serial sweep  : {1e3 * (t1 - t0):6.1f} ms")
    print(f"parallel sweep: {1e3 * (t2 - t1):6.1f} ms  (4 workers)")
    print(f"bit-identical : {identical}\n")

    # -- 2. calibration cache across repeated sweeps ----------------
    for repeat in range(3):
        serial.run_bode(dut, config, frequencies)
    cache = serial.cache
    print(
        f"calibration cache after 4 sweeps: {cache.hits} hits, "
        f"{cache.misses} miss(es), hit rate {cache.hit_rate:.2f}\n"
    )

    # -- 3. Monte-Carlo yield through a BIST program ----------------
    # The session layer fronts the same engine: one policy decides
    # backend/workers/seed, and the lot returns the uniform Result.
    nominal = design_mfb_lowpass(1000.0)
    golden = ActiveRCLowpass(nominal)
    test_freqs = [300.0, 1000.0, 2000.0]
    mask = SpecMask.from_golden(golden, test_freqs, tolerance_db=2.0)
    program = BISTProgram(mask, test_freqs, m_periods=40)
    with Session(
        config=AnalyzerConfig.ideal(m_periods=40),
        policy=ExecutionPolicy(n_workers=4, seed=1),
    ) as session:
        report = session.yield_lot(
            nominal, mask, program, n_devices=20, component_sigma=0.08
        ).raw
    print(
        f"lot of {report.n_devices}: test yield {report.test_yield:.2f}, "
        f"true yield {report.true_yield:.2f}, escapes {report.escape_rate:.2f}, "
        f"overkill {report.overkill_rate:.2f}, "
        f"ambiguous {report.ambiguous_rate:.2f}"
    )


if __name__ == "__main__":
    main()
