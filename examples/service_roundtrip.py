"""Analyzer-as-a-service, end to end: submit, stream, survive a crash.

Boots the async service plus its TCP server in-process, replays two of
the committed example scenarios through :class:`ServiceClient`, and
diffs each streamed result against the committed golden baseline — the
same drift check CI applies to synchronous runs.  The second scenario
runs with a deliberately injected worker death: the killed shard is
re-enqueued and re-executed on its original seed substream, so even the
crash run checks clean against the recording.

Run with::

    PYTHONPATH=src python examples/service_roundtrip.py
"""

import asyncio
import pathlib

from repro.api import ExecutionPolicy
from repro.scenarios import baseline
from repro.scenarios.result import diff
from repro.service import AnalyzerServer, AnalyzerService, ServiceClient

BASELINES = (
    pathlib.Path(__file__).parent.parent
    / "tests" / "baselines" / "scenarios"
)
#: Sharded two ways across two workers — and still bit-identical.
POLICY = ExecutionPolicy(backend="vectorized", n_workers=2, chunk_size=3)


def replay(name: str, port: int) -> None:
    recorded = baseline.load(BASELINES / f"{name}.json")
    client = ServiceClient(port=port, timeout=120.0)
    frames = list(client.stream(recorded.spec, POLICY))
    kinds = [frame["type"] for frame in frames]
    streamed = client.result(frames[0]["job_id"])
    report = diff(recorded.result, streamed)
    assert report.ok, report.report()
    print(f"  {name:20s} {len(frames)} frames "
          f"({kinds.count('step')} steps) -> {report.report()}")


async def roundtrip(title: str, name: str, **service_kwargs) -> dict:
    service = AnalyzerService(max_running=2, **service_kwargs)
    async with AnalyzerServer(service) as server:
        print(title)
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, replay, name, server.port)
        return service.metrics.snapshot()


def main() -> None:
    asyncio.run(roundtrip(
        "clean roundtrip over TCP:", "bode_sweep"
    ))

    # Chaos: the 2nd shard task started gets WorkerDied mid-flight.
    snapshot = asyncio.run(roundtrip(
        "roundtrip with an injected worker death:", "fault_coverage",
        chaos_kill_shard=2,
    ))
    deaths = snapshot["service.worker_deaths"]["value"]
    retries = snapshot["service.retries"]["value"]
    assert deaths == 1 and retries == 1, snapshot
    print(f"  worker deaths: {deaths}, shard retries: {retries} — "
          f"replayed shard matched the recording bit for bit")


if __name__ == "__main__":
    main()
