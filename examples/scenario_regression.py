"""Declarative scenarios + golden-baseline regression, end to end.

Builds a small two-step scenario in code, round-trips it through its
canonical JSON form, runs it on both execution backends (same integer
signatures, guaranteed), records a golden baseline, then demonstrates
drift detection by checking the baseline against a perturbed copy.

Run with::

    PYTHONPATH=src python examples/scenario_regression.py
"""

import json
import pathlib
import tempfile

from repro.scenarios import (
    AnalyzerSettings,
    ScenarioSpec,
    SweepStep,
    YieldStep,
    baseline,
    run_scenario,
)

spec = ScenarioSpec(
    name="incoming_inspection",
    description="characterize the demonstrator, then screen a small lot",
    seed=7,
    analyzer=AnalyzerSettings(m_periods=20),
    steps=(
        SweepStep(name="characterize", f_start=300.0, f_stop=3000.0, n_points=5),
        YieldStep(name="lot", n_devices=8, component_sigma=0.04),
    ),
)

# The spec is data: canonical JSON, identical after a round trip.
assert ScenarioSpec.from_json(spec.to_json()) == spec
print(f"scenario {spec.name!r}: {len(spec.steps)} steps, seed {spec.seed}")

# Same spec, both backends: integer signature channels are bit-identical.
reference = run_scenario(spec, backend="reference")
vectorized = run_scenario(spec, backend="vectorized")
for ref_step, vec_step in zip(reference.steps, vectorized.steps):
    assert ref_step.exact == vec_step.exact
    print(f"  step {ref_step.name!r:15s} {ref_step.headline():30s} "
          f"(exact channels identical across backends)")

with tempfile.TemporaryDirectory() as tmp:
    # Record the golden baseline: a self-contained canonical artifact.
    path = baseline.default_baseline_path(spec, tmp)
    baseline.record(spec, path)
    print(f"recorded baseline: {path.name} "
          f"({path.stat().st_size} canonical bytes)")

    # A clean replay — on the other backend — reports no drift.
    report = baseline.check(path, backend="vectorized")
    print(report.report())

    # Perturb one signature count by a single LSB: check() names it.
    payload = json.loads(path.read_text())
    payload["steps"][0]["exact"]["signature_counts"][0][0] += 1
    drifted = pathlib.Path(tmp) / "drifted.json"
    drifted.write_text(json.dumps(payload))
    report = baseline.check(drifted)
    assert not report.ok
    print(report.report())
