"""Evaluator accuracy vs test time (the paper's Fig. 9 scenario).

Feeds the paper's three-tone multitone (0.2 / 0.02 / 0.002 V — tones
20 dB apart) from the ATE straight into the sinewave evaluator and shows
how the measured amplitudes converge as the evaluation window M grows:
the accuracy of a BIST measurement is a *test-time dial*, not a fixed
property.

Run:  python examples/evaluator_convergence.py
"""

import numpy as np

from repro.evaluator import SignatureDSP
from repro.testbench import DigitalATE
from repro.units import dbm_fs

AMPLITUDES = (0.2, 0.02, 0.002)
M_GRID = (20, 50, 100, 200, 500, 1000)
RUNS = 10


def main() -> None:
    ate = DigitalATE(seed=9)
    evaluator = ate.build_evaluator()
    dsp = SignatureDSP()

    print(
        "three-tone multitone: A1 = 200 mV, A2 = 20 mV, A3 = 2 mV "
        "(-11 / -31 / -51 dBm in the paper's convention)\n"
    )
    header = f"{'M':>5} {'MN':>7}"
    for k in (1, 2, 3):
        header += f" | A{k} mean (dBm)  spread"
    print(header)

    for m in M_GRID:
        readings = {1: [], 2: [], 3: []}
        for _ in range(RUNS):
            x = ate.source_harmonic_multitone(
                AMPLITUDES, m_periods=m, noise_rms=50e-6, random_phase=True
            )
            for k in (1, 2, 3):
                sig = ate.acquire(
                    evaluator, x, harmonic=k, m_periods=m, randomize_state=True
                )
                readings[k].append(float(dbm_fs(dsp.amplitude(sig).value)))
        line = f"{m:>5} {m * 96:>7}"
        for k in (1, 2, 3):
            mean = np.mean(readings[k])
            spread = np.max(readings[k]) - np.min(readings[k])
            line += f" | {mean:10.2f}  {spread:6.2f}"
        print(line)

    print(
        "\nAs in Fig. 9: the 2nd and 3rd harmonics resolve 20 and 40 dB "
        "below the fundamental, errors shrink as 1/(MN), and 'in last "
        "instance the main limitation ... is given by the available test "
        "time.'"
    )


if __name__ == "__main__":
    main()
